(* Tests for causal span tracing, the packet flight recorder and the engine
   profiler — plus the PR's acceptance criteria: a traced two-gateway chain
   yields a span forest whose stages cover the request's life, the
   Verification span equals the registry's time-to-filter observation, the
   Chrome export is valid JSON, and a traced run is bit-identical to an
   untraced one. *)

module Span = Aitf_obs.Span
module Flight = Aitf_obs.Flight
module Profile = Aitf_obs.Profile
module Json = Aitf_obs.Json
module Metrics = Aitf_obs.Metrics
module Sim = Aitf_engine.Sim
module Scenarios = Aitf_workload.Scenarios
module Chain = Aitf_topo.Chain
open Aitf_core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf = check (Alcotest.float 1e-9)

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let contains ~sub s =
  let ls = String.length s and lx = String.length sub in
  let rec go i = i + lx <= ls && (String.sub s i lx = sub || go (i + 1)) in
  go 0

(* --- span collector mechanics ---------------------------------------------- *)

let with_collector f =
  let t = Span.create () in
  Span.attach t;
  Fun.protect ~finally:Span.detach (fun () -> f t)

let test_mint_monotone () =
  let a = Span.mint () in
  let b = Span.mint () in
  checkb "minting increments" true (b = a + 1);
  (* minting is independent of attachment *)
  with_collector (fun _ -> ());
  let c = Span.mint () in
  checkb "still monotone" true (c = b + 1)

let test_span_lifecycle () =
  with_collector (fun t ->
      let corr = Span.mint () in
      Span.root ~corr ~flow:"a -> v" ~victim:"V" ~now:1.0;
      Span.start ~corr ~stage:Span.Detect ~node:"V" ~now:1.0;
      Span.event ~corr ~now:1.05 "spotted";
      Span.finish ~corr ~stage:Span.Detect ~now:1.1 ();
      Span.start ~corr ~stage:Span.Request ~node:"V" ~now:1.1;
      Span.finish ~corr ~stage:Span.Request ~now:1.2 ();
      Span.complete ~corr ~now:1.5;
      (* a corr with no root (forged request, corr 0) records nothing *)
      Span.start ~corr:0 ~stage:Span.Request ~node:"X" ~now:9.;
      Span.finish ~corr:0 ~stage:Span.Request ~now:9.1 ();
      Span.event ~corr:0 ~now:9.2 "ignored";
      checki "one root" 1 (List.length (Span.roots t));
      let r = Option.get (Span.find_root t corr) in
      checks "flow" "a -> v" r.Span.flow;
      checkf "completed" 1.5 (Option.get r.Span.completed_at);
      let spans = Span.spans_of r in
      checki "two spans" 2 (List.length spans);
      let d = List.hd spans in
      checks "opening order" "detect" (Span.stage_name d.Span.stage);
      checkf "duration" 0.1 (Option.get (Span.duration d));
      checki "one event" 1 (List.length (Span.events_of d));
      checki "completed roots" 1 (List.length (Span.completed_roots t)))

let test_finish_is_node_scoped () =
  with_collector (fun t ->
      let corr = Span.mint () in
      Span.root ~corr ~flow:"f" ~victim:"V" ~now:0.;
      (* the same stage open on two nodes at once, as during escalation *)
      Span.start ~corr ~stage:Span.Temp_filter ~node:"G1" ~now:0.;
      Span.start ~corr ~stage:Span.Temp_filter ~node:"G2" ~now:1.;
      Span.finish ~node:"G1" ~corr ~stage:Span.Temp_filter ~now:2. ();
      let r = Option.get (Span.find_root t corr) in
      let by_node n =
        List.find (fun s -> s.Span.node = n) (Span.spans_of r)
      in
      checkb "G1 closed" true ((by_node "G1").Span.finished_at = Some 2.);
      checkb "G2 still open" true ((by_node "G2").Span.finished_at = None);
      (* finishing a stage nobody opened is a no-op, not an error *)
      Span.finish ~corr ~stage:Span.Verification ~now:3. ())

let test_nonce_binding () =
  with_collector (fun t ->
      let corr = Span.mint () in
      Span.root ~corr ~flow:"f" ~victim:"V" ~now:0.;
      Span.bind_nonce ~corr ~nonce:77L;
      checkb "nonce resolves" true (Span.corr_of_nonce ~nonce:77L = Some corr);
      checkb "unknown nonce" true (Span.corr_of_nonce ~nonce:1L = None);
      Span.event_by_nonce ~nonce:77L ~now:0.5 "fault-dropped-query";
      Span.event_by_nonce ~nonce:1L ~now:0.5 "ignored";
      let r = Option.get (Span.find_root t corr) in
      checki "event landed at root" 1 (List.length r.Span.root_events))

let test_slo_fires_on_breach () =
  with_collector (fun t ->
      let breached = ref [] in
      Span.set_slo t ~seconds:1.0 (fun r -> breached := r.Span.corr :: !breached);
      let fast = Span.mint () in
      Span.root ~corr:fast ~flow:"fast" ~victim:"V" ~now:0.;
      Span.complete ~corr:fast ~now:0.5;
      let slow = Span.mint () in
      Span.root ~corr:slow ~flow:"slow" ~victim:"V" ~now:0.;
      Span.complete ~corr:slow ~now:2.0;
      Span.complete ~corr:slow ~now:9.0;
      (* duplicate completion: first wins, no second callback *)
      checkb "only the slow root breached" true (!breached = [ slow ]);
      let r = Option.get (Span.find_root t slow) in
      checkf "first completion wins" 2.0 (Option.get r.Span.completed_at))

(* --- shard merge ------------------------------------------------------------ *)

let record_into c f =
  Span.attach c;
  Fun.protect ~finally:Span.detach f

let shard_collector () =
  let c = Span.create () in
  Span.set_allow_orphans c true;
  c

let test_root_event_ignores_open_spans () =
  with_collector (fun t ->
      let corr = Span.mint () in
      Span.root ~corr ~flow:"f" ~victim:"V" ~now:0.;
      Span.start ~corr ~stage:Span.Temp_filter ~node:"G" ~now:0.;
      Span.event ~corr ~now:0.1 "lands in the open span";
      (* root_event must bypass the open span: "newest open span" depends
         on which collector saw which opens, so shard-layout-invariant
         sources (fluid mirror, auditors) pin to the root instead *)
      Span.root_event ~corr ~now:0.2 "lands at the root";
      let r = Option.get (Span.find_root t corr) in
      checki "root got exactly one" 1 (List.length r.Span.root_events);
      checks "the right one" "lands at the root"
        (List.hd r.Span.root_events).Span.label;
      let s = List.hd (Span.spans_of r) in
      checki "span kept its own" 1 (List.length (Span.events_of s)))

let test_merge_reunites_orphans () =
  let master = shard_collector () in
  let sa = shard_collector () and sb = shard_collector () in
  (* root + detect live in shard A... *)
  record_into sa (fun () ->
      Span.root ~corr:7 ~flow:"a -> v" ~victim:"V" ~now:1.0;
      Span.start ~corr:7 ~stage:Span.Detect ~node:"V" ~now:1.0;
      Span.finish ~corr:7 ~stage:Span.Detect ~now:1.1 ());
  (* ...while the attacker-side stages land in shard B as an orphan
     placeholder, plus a forged id with no real root anywhere *)
  record_into sb (fun () ->
      Span.start ~corr:7 ~stage:Span.Verification ~node:"G" ~now:1.2;
      Span.finish ~corr:7 ~stage:Span.Verification ~now:1.4 ();
      Span.complete ~corr:7 ~now:1.5;
      Span.start ~corr:999 ~stage:Span.Request ~node:"X" ~now:2.;
      Span.finish ~corr:999 ~stage:Span.Request ~now:2.1 ());
  Span.merge_into master [ sa; sb ];
  checki "forged orphan dropped, real root kept" 1
    (List.length (Span.roots master));
  let r = List.hd (Span.roots master) in
  checki "re-keyed to 1" 1 r.Span.corr;
  checkb "no longer an orphan" false r.Span.orphan;
  checks "identity from the real root" "V" r.Span.victim;
  checkf "orphan's completion carried over" 1.5
    (Option.get r.Span.completed_at);
  let stages =
    List.map (fun s -> Span.stage_name s.Span.stage) (Span.spans_of r)
  in
  checkb "shard A's span present" true (List.mem "detect" stages);
  checkb "shard B's span present" true (List.mem "verification" stages)

let test_digest_shard_layout_invariant () =
  (* the same logical trace recorded two ways — sequentially with corr
     ids 1,2 and split over two shard collectors with stride-minted ids —
     must produce the same digest: canonical re-keying erases both the
     raw ids and the shard layout *)
  let record ~c1 ~c2 ~(into : int -> Span.t) =
    record_into (into 0) (fun () ->
        Span.root ~corr:c1 ~flow:"f1" ~victim:"V" ~now:0.;
        Span.start ~corr:c1 ~stage:Span.Request ~node:"V" ~now:0.;
        Span.finish ~corr:c1 ~stage:Span.Request ~now:0.2 ());
    record_into (into 1) (fun () ->
        Span.root_event ~corr:c1 ~now:0.3 "fluid-mirror-install";
        Span.complete ~corr:c1 ~now:0.4;
        Span.root ~corr:c2 ~flow:"f2" ~victim:"W" ~now:0.1;
        Span.start ~corr:c2 ~stage:Span.Detect ~node:"W" ~now:0.1;
        Span.finish ~corr:c2 ~stage:Span.Detect ~now:0.15 ())
  in
  let seq = Span.create () in
  Span.set_allow_orphans seq true;
  record ~c1:1 ~c2:2 ~into:(fun _ -> seq);
  let master = shard_collector () in
  let sa = shard_collector () and sb = shard_collector () in
  record
    ~c1:((1 lsl 24) + 1)
    ~c2:((2 lsl 24) + 1)
    ~into:(fun i -> if i = 0 then sa else sb);
  Span.merge_into master [ sa; sb ];
  checks "digest invariant across layouts" (Span.digest seq)
    (Span.digest master);
  (* and the digest alone canonicalizes: the unmerged sequential
     collector with shifted raw ids fingerprints identically too *)
  let shifted = Span.create () in
  Span.set_allow_orphans shifted true;
  record ~c1:501 ~c2:502 ~into:(fun _ -> shifted);
  checks "digest independent of raw corr ids" (Span.digest seq)
    (Span.digest shifted)

(* --- flight recorder -------------------------------------------------------- *)

let test_flight_ring_bounds () =
  let f = Flight.create ~capacity:4 in
  Flight.attach f;
  Fun.protect ~finally:Flight.detach (fun () ->
      for i = 1 to 10 do
        Flight.note ~time:(float_of_int i) ~node:"A" ~link:"A->B"
          ~kind:(if i mod 2 = 0 then Flight.Enqueue else Flight.Dequeue)
          ~size:1000 ~queue_depth:i ()
      done);
  checki "total recorded" 10 (Flight.recorded f);
  let rs = Flight.records f in
  checki "ring keeps last 4" 4 (List.length rs);
  checkf "oldest retained is #7" 7. (List.hd rs).Flight.time;
  checkf "newest is #10" 10. (List.nth rs 3).Flight.time

let test_flight_note_without_recorder () =
  Flight.detach ();
  checkb "disabled" false (Flight.enabled ());
  (* one branch, no crash *)
  Flight.note ~time:0. ~node:"A" ~link:"A->B" ~kind:(Flight.Drop "full")
    ~size:1 ~queue_depth:0 ()

(* --- engine profiler -------------------------------------------------------- *)

let test_profiler_buckets_by_label () =
  let p = Profile.create () in
  Profile.attach p;
  Fun.protect ~finally:Profile.detach (fun () ->
      let sim = Sim.create () in
      for i = 1 to 5 do
        ignore (Sim.after ~label:"tick" sim (float_of_int i) ignore)
      done;
      ignore (Sim.after sim 0.5 ignore);
      Sim.run ~until:10. sim);
  checki "all events timed" 6 (Profile.events p);
  checkb "peak queue depth seen" true (Profile.peak_pending p >= 5);
  let labels = List.map fst (Profile.buckets p) in
  checkb "tick bucket" true (List.mem "tick" labels);
  checkb "unlabelled lands in other" true (List.mem "other" labels);
  let tick_events = fst (List.assoc "tick" (Profile.buckets p)) in
  checki "tick count" 5 tick_events;
  checkb "report mentions tick" true (contains ~sub:"tick" (Profile.report p))

(* --- the traced two-gateway chain ------------------------------------------- *)

let two_gw_params =
  {
    Scenarios.default_chain with
    Scenarios.spec = { Chain.default_spec with Chain.depth = 1 };
    config = Config.with_timescale Config.default 0.1;
    duration = 6.;
    attacker_strategy = Policy.Complies;
  }

let run_traced ?(params = two_gw_params) () =
  let t = Span.create () in
  Span.attach t;
  let r =
    Fun.protect ~finally:Span.detach (fun () -> Scenarios.run_chain params)
  in
  (t, r)

let stage_names root =
  List.map (fun s -> Span.stage_name s.Span.stage) (Span.spans_of root)

let test_chain_span_forest () =
  let t, _r = run_traced () in
  let completed = Span.completed_roots t in
  checkb "at least one completed request" true (completed <> []);
  let root = List.hd completed in
  let names = stage_names root in
  List.iter
    (fun stage -> checkb ("has " ^ stage) true (List.mem stage names))
    [
      "detect";
      "request";
      "temp-filter";
      "verification";
      "counter-request";
      "permanent-filter";
    ];
  (* every span belongs to a real node and respects causality *)
  List.iter
    (fun s ->
      checkb "node named" true (s.Span.node <> "");
      checkb "starts after root opened" true
        (s.Span.started_at >= root.Span.opened_at);
      match Span.duration s with
      | Some d -> checkb "non-negative duration" true (d >= 0.)
      | None -> ())
    (Span.spans_of root);
  (* completion = the long filter landing at the attacker side *)
  checkb "completed after opening" true
    (Option.get root.Span.completed_at > root.Span.opened_at)

let test_verification_equals_time_to_filter () =
  (* run with both a registry and the collector attached: the sum of
     Verification span durations must equal the sum of every
     gateway.*.time_to_filter observation *)
  let reg = Metrics.create () in
  let t, _r =
    Metrics.with_attached reg (fun () -> run_traced ())
  in
  let ttf_count, ttf_sum =
    List.fold_left
      (fun (c, s) name ->
        if has_suffix ~suffix:".time_to_filter" name then
          match Metrics.value reg name with
          | Some (Metrics.Histogram { count; sum; _ }) -> (c + count, s +. sum)
          | _ -> (c, s)
        else (c, s))
      (0, 0.) (Metrics.names reg)
  in
  checkb "registry observed time-to-filter" true (ttf_count > 0);
  let ver_durations =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun s ->
            if s.Span.stage = Span.Verification then Span.duration s else None)
          (Span.spans_of r))
      (Span.roots t)
  in
  checki "one span per observation" ttf_count (List.length ver_durations);
  checkf "verification duration = time-to-filter" ttf_sum
    (List.fold_left ( +. ) 0. ver_durations)

let test_chrome_trace_is_valid_json () =
  let t, r = run_traced () in
  let json = Span.to_chrome_trace ~now:r.Scenarios.params.Scenarios.duration t in
  let s = Json.to_string json in
  match Json.parse s with
  | Error e -> Alcotest.fail ("export does not parse: " ^ e)
  | Ok parsed ->
    let events =
      Option.get (Json.get_list (Option.get (Json.member "traceEvents" parsed)))
    in
    checkb "has events" true (events <> []);
    List.iter
      (fun e ->
        let field name = Json.member name e in
        checkb "ph present" true
          (match field "ph" with
          | Some (Json.String ("X" | "i" | "M")) -> true
          | _ -> false);
        checkb "pid present" true (field "pid" <> None);
        match field "ph" with
        | Some (Json.String "X") ->
          checkb "complete event has ts+dur" true
            (field "ts" <> None && field "dur" <> None)
        | _ -> ())
      events

let digest (r : Scenarios.chain_result) =
  ( r.Scenarios.events_processed,
    r.Scenarios.attack_received_bytes,
    r.Scenarios.attack_offered_bytes,
    r.Scenarios.r_measured,
    r.Scenarios.requests_sent,
    r.Scenarios.escalations,
    r.Scenarios.faults_injected )

let test_tracing_does_not_perturb () =
  (* faults + retries exercise the nonce-annotation and retransmit event
     paths; the traced run must execute the same event sequence anyway *)
  let params =
    {
      two_gw_params with
      Scenarios.duration = 8.;
      ctrl_faults = [ Aitf_fault.Fault.Loss 0.3 ];
      config = { two_gw_params.Scenarios.config with Config.ctrl_retries = 2 };
    }
  in
  let untraced = Scenarios.run_chain params in
  let t, traced = run_traced ~params () in
  let flight = Flight.create ~capacity:64 in
  Flight.attach flight;
  let traced_and_recorded =
    Fun.protect ~finally:Flight.detach (fun () ->
        let t2 = Span.create () in
        Span.attach t2;
        Fun.protect ~finally:Span.detach (fun () -> Scenarios.run_chain params))
  in
  checkb "span forest non-trivial" true (Span.roots t <> []);
  checkb "flight recorder saw traffic" true (Flight.recorded flight > 0);
  checkb "traced = untraced" true (digest untraced = digest traced);
  checkb "traced+flight = untraced" true
    (digest untraced = digest traced_and_recorded)

let () =
  Alcotest.run "aitf_span"
    [
      ( "collector",
        [
          Alcotest.test_case "mint monotone" `Quick test_mint_monotone;
          Alcotest.test_case "lifecycle" `Quick test_span_lifecycle;
          Alcotest.test_case "finish is node-scoped" `Quick
            test_finish_is_node_scoped;
          Alcotest.test_case "nonce binding" `Quick test_nonce_binding;
          Alcotest.test_case "slo fires on breach" `Quick
            test_slo_fires_on_breach;
        ] );
      ( "merge",
        [
          Alcotest.test_case "root_event ignores open spans" `Quick
            test_root_event_ignores_open_spans;
          Alcotest.test_case "merge reunites orphans" `Quick
            test_merge_reunites_orphans;
          Alcotest.test_case "digest is shard-layout invariant" `Quick
            test_digest_shard_layout_invariant;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bounds" `Quick test_flight_ring_bounds;
          Alcotest.test_case "note without recorder" `Quick
            test_flight_note_without_recorder;
        ] );
      ( "profile",
        [
          Alcotest.test_case "buckets by label" `Quick
            test_profiler_buckets_by_label;
        ] );
      ( "chain",
        [
          Alcotest.test_case "span forest covers the stages" `Slow
            test_chain_span_forest;
          Alcotest.test_case "verification = time-to-filter" `Slow
            test_verification_equals_time_to_filter;
          Alcotest.test_case "chrome trace is valid json" `Slow
            test_chrome_trace_is_valid_json;
          Alcotest.test_case "tracing does not perturb the run" `Slow
            test_tracing_does_not_perturb;
        ] );
    ]
