(* Tests for aitf_workload: traffic sources, the request driver and the
   packaged chain scenario. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
module Traffic = Aitf_workload.Traffic
module Request_driver = Aitf_workload.Request_driver
module Scenarios = Aitf_workload.Scenarios
open Aitf_core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

(* Two hosts on a fat link; returns a counter of delivered packets. *)
let pair () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_node net ~name:"a" ~addr:(addr "1.0.0.1") ~as_id:1 Node.Host in
  let b = Network.add_node net ~name:"b" ~addr:(addr "2.0.0.1") ~as_id:2 Node.Host in
  ignore (Network.connect net a b ~bandwidth:1e9 ~delay:0.001);
  Network.compute_routes net;
  let received = ref [] in
  b.Node.local_deliver <- (fun _ pkt -> received := pkt :: !received);
  (sim, net, a, b, received)

let test_cbr_rate () =
  let sim, net, a, b, received = pair () in
  (* 8 Mbit/s in 1000 B packets = 1000 packets/s for 1 s. *)
  let src =
    Traffic.cbr ~flow_id:1 ~rate:8e6 ~dst:b.Node.addr net a
  in
  Sim.run ~until:1.0 sim;
  checkb "~1000 packets sent" true (abs (Traffic.sent_packets src - 1000) <= 1);
  checkb "all delivered" true
    (abs (List.length !received - Traffic.sent_packets src) <= 2);
  checki "bytes" (Traffic.sent_packets src * 1000) (Traffic.sent_bytes src)

let test_cbr_start_stop () =
  let sim, net, a, b, received = pair () in
  ignore received;
  let src =
    Traffic.cbr ~start:2.0 ~stop:3.0 ~flow_id:1 ~rate:8e5 ~dst:b.Node.addr net a
  in
  Sim.run ~until:1.9 sim;
  checki "nothing before start" 0 (Traffic.sent_packets src);
  Sim.run ~until:10.0 sim;
  (* 1 s window at 100 pkt/s *)
  checkb "one second's worth" true (abs (Traffic.sent_packets src - 100) <= 1)

let test_halt () =
  let sim, net, a, b, _ = pair () in
  let src = Traffic.cbr ~flow_id:1 ~rate:8e5 ~dst:b.Node.addr net a in
  ignore (Sim.at sim 0.5 (fun () -> Traffic.halt src));
  Sim.run ~until:2.0 sim;
  checkb "halted near 50" true (abs (Traffic.sent_packets src - 50) <= 2)

let test_gate_suppression () =
  let sim, net, a, b, received = pair () in
  let odd = ref false in
  let gate _ =
    odd := not !odd;
    !odd
  in
  let src = Traffic.cbr ~gate ~flow_id:1 ~rate:8e5 ~dst:b.Node.addr net a in
  Sim.run ~until:1.0 sim;
  checkb "half gated" true (abs (Traffic.gated_packets src - 50) <= 2);
  checkb "half sent" true (abs (Traffic.sent_packets src - 50) <= 2);
  checkb "received matches sent" true
    (abs (List.length !received - Traffic.sent_packets src) <= 2)

let test_spoofing_applied () =
  let sim, net, a, b, received = pair () in
  let spoofed = addr "99.99.99.99" in
  let (_ : Traffic.t) =
    Traffic.cbr
      ~spoof:(fun () -> Some spoofed)
      ~flow_id:1 ~rate:8e5 ~dst:b.Node.addr net a
  in
  Sim.run ~until:0.1 sim;
  (match !received with
  | pkt :: _ ->
    checkb "header spoofed" true (Addr.equal pkt.Packet.src spoofed);
    checkb "true src preserved" true (Addr.equal pkt.Packet.true_src a.Node.addr)
  | [] -> Alcotest.fail "no packets")

let test_attack_flag () =
  let sim, net, a, b, received = pair () in
  let (_ : Traffic.t) =
    Traffic.cbr ~attack:true ~flow_id:5 ~rate:8e5 ~dst:b.Node.addr net a
  in
  Sim.run ~until:0.1 sim;
  match !received with
  | pkt :: _ -> (
    match pkt.Packet.payload with
    | Packet.Data { flow_id; attack } ->
      checki "flow id" 5 flow_id;
      checkb "attack flag" true attack
    | _ -> Alcotest.fail "wrong payload")
  | [] -> Alcotest.fail "no packets"

let test_poisson_mean_rate () =
  let sim, net, a, b, _ = pair () in
  let rng = Rng.create ~seed:42 in
  let src =
    Traffic.poisson ~rng ~flow_id:1 ~rate:8e5 ~dst:b.Node.addr net a
  in
  Sim.run ~until:20.0 sim;
  (* 100 pkt/s * 20 s = 2000 expected; Poisson sd ~ 45. *)
  checkb "mean rate within 10%" true
    (abs (Traffic.sent_packets src - 2000) < 200)

let test_label_helper () =
  let sim, net, a, b, _ = pair () in
  ignore sim;
  let src = Traffic.cbr ~flow_id:1 ~rate:8e5 ~dst:b.Node.addr net a in
  let l = Traffic.label src ~src:a.Node.addr in
  checkb "label matches" true
    (Aitf_filter.Flow_label.equal l
       (Aitf_filter.Flow_label.host_pair a.Node.addr b.Node.addr))

let test_invalid_rate () =
  let _, net, a, b, _ = pair () in
  checkb "rejects zero rate" true
    (try
       ignore (Traffic.cbr ~flow_id:1 ~rate:0. ~dst:b.Node.addr net a);
       false
     with Invalid_argument _ -> true)

(* --- Request driver ---------------------------------------------------------- *)

let test_driver_rate_and_indices () =
  let sim, net, a, b, received = pair () in
  let mk i =
    {
      Message.flow =
        Aitf_filter.Flow_label.host_pair (Addr.add (addr "5.0.0.0") i) b.Node.addr;
      target = Message.To_victim_gateway;
      duration = 60.;
      path = [];
      hops = 0;
      requestor = a.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  let d =
    Request_driver.create ~rate:10. ~dst:b.Node.addr ~make_request:mk net a
  in
  Sim.run ~until:1.05 sim;
  checkb "~10 requests" true (abs (Request_driver.sent d - 11) <= 1);
  (* Distinct flows per index. *)
  let flows =
    List.filter_map
      (fun (pkt : Packet.t) ->
        match pkt.Packet.payload with
        | Message.Filtering_request r -> Some r.Message.flow
        | _ -> None)
      !received
  in
  let uniq = List.sort_uniq Aitf_filter.Flow_label.compare flows in
  checki "all distinct" (List.length flows) (List.length uniq)

let test_driver_answers_queries () =
  let sim, net, a, b, received = pair () in
  let mk _ =
    {
      Message.flow = Aitf_filter.Flow_label.host_pair a.Node.addr b.Node.addr;
      target = Message.To_victim_gateway;
      duration = 60.;
      path = [];
      hops = 0;
      requestor = a.Node.addr;
      corr = 0;
      auth = 0L;
    }
  in
  let d =
    Request_driver.create ~rate:1. ~dst:b.Node.addr ~make_request:mk net a
  in
  (* Send a verification query to the driver node. *)
  let flow = Aitf_filter.Flow_label.host_pair a.Node.addr b.Node.addr in
  ignore
    (Sim.at sim 0.5 (fun () ->
         Network.originate net b
           (Message.packet ~src:b.Node.addr ~dst:a.Node.addr
              (Message.Verification_query { flow; nonce = 7L }))));
  Sim.run ~until:2.0 sim;
  checki "answered" 1 (Request_driver.queries_answered d);
  let replies =
    List.filter
      (fun (pkt : Packet.t) ->
        match pkt.Packet.payload with
        | Message.Verification_reply { nonce = 7L; _ } -> true
        | _ -> false)
      !received
  in
  checki "reply with echoed nonce" 1 (List.length replies)

(* --- App (request/response transactions) ------------------------------------- *)

module App = Aitf_workload.App

let test_app_transaction_completes () =
  let sim, net, a, b, _ = pair () in
  let server = App.Server.create ~reply_packets:3 net b in
  let client =
    App.Client.create ~period:0.5 ~timeout:1.0 ~stop:2.9 ~server:b.Node.addr
      net a
  in
  Sim.run ~until:5.0 sim;
  checki "six transactions" 6 (App.Client.completed client);
  checki "no failures" 0 (App.Client.failed client);
  checki "server served them" 6 (App.Server.requests_served server);
  checkb "rate 1.0" true (App.Client.completion_rate client = 1.0);
  (* Latency ~ 2 * 1 ms propagation + serialisation; well under 10 ms. *)
  List.iter
    (fun l -> checkb "latency sane" true (l > 0. && l < 0.01))
    (App.Client.latencies client)

let test_app_fails_when_unreachable () =
  let sim, net, a, b, _ = pair () in
  let (_ : App.Server.t) = App.Server.create net b in
  (* Cut the link before any request. *)
  ignore (Network.disconnect_port net a ~peer_id:b.Node.id);
  let client =
    App.Client.create ~period:1.0 ~timeout:0.5 ~retries:1 ~stop:1.5
      ~server:b.Node.addr net a
  in
  Sim.run ~until:5.0 sim;
  checki "both failed" 2 (App.Client.failed client);
  checki "none completed" 0 (App.Client.completed client);
  (* 2 transactions x (1 try + 1 retry) *)
  checki "retries happened" 4 (App.Client.attempts client)

let test_app_retry_recovers () =
  let sim, net, a, b, _ = pair () in
  let (_ : App.Server.t) = App.Server.create net b in
  (* Link down for the first attempt, up again before the retry. *)
  ignore (Network.disconnect_port net a ~peer_id:b.Node.id);
  ignore
    (Sim.at sim 0.7 (fun () ->
         List.iter (fun l -> Link.set_up l true) (Network.links net)));
  let client =
    App.Client.create ~period:10. ~timeout:0.5 ~retries:2 ~stop:5.
      ~server:b.Node.addr net a
  in
  Sim.run ~until:5.0 sim;
  checki "recovered via retry" 1 (App.Client.completed client);
  checki "no failure" 0 (App.Client.failed client);
  checkb "took more than one attempt" true (App.Client.attempts client >= 2)

let test_app_partial_reply_times_out () =
  let sim, net, a, b, _ = pair () in
  let (_ : App.Server.t) = App.Server.create ~reply_packets:4 net b in
  (* Kill the reverse direction mid-reply: deliver only part of the reply.
     Easiest deterministic way: cut the link shortly after the request goes
     out. *)
  ignore
    (Sim.at sim 0.0015 (fun () ->
         ignore (Network.disconnect_port net b ~peer_id:a.Node.id)));
  let client =
    App.Client.create ~period:10. ~timeout:0.5 ~retries:0 ~stop:5.
      ~server:b.Node.addr net a
  in
  Sim.run ~until:3.0 sim;
  checki "incomplete reply fails" 1 (App.Client.failed client);
  checki "not completed" 0 (App.Client.completed client)

(* --- Shape shifter --------------------------------------------------------------- *)

module Shape_shifter = Aitf_workload.Shape_shifter

let test_shifter_rotates_identity () =
  let sim, net, a, b, received = pair () in
  let (_ : Shape_shifter.t) =
    Shape_shifter.create ~pool:100 ~shift_period:1.0 ~flow_id:1 ~rate:8e5
      ~dst:b.Node.addr ~spoof_base:(addr "50.0.0.0") net a
  in
  Sim.run ~until:3.5 sim;
  let sources =
    List.map (fun (p : Packet.t) -> p.Packet.src) !received
    |> List.sort_uniq Addr.compare
  in
  checki "four identities over 3.5s" 4 (List.length sources);
  checkb "true source constant" true
    (List.for_all
       (fun (p : Packet.t) -> Addr.equal p.Packet.true_src a.Node.addr)
       !received);
  (* Ports rotate with the shape. *)
  let ports =
    List.map (fun (p : Packet.t) -> p.Packet.sport) !received
    |> List.sort_uniq Int.compare
  in
  checki "four source ports" 4 (List.length ports)

let test_shifter_pool_recycles () =
  let sim, net, a, b, received = pair () in
  let s =
    Shape_shifter.create ~pool:2 ~shift_period:0.5 ~flow_id:1 ~rate:8e5
      ~dst:b.Node.addr ~spoof_base:(addr "50.0.0.0") net a
  in
  Sim.run ~until:3.0 sim;
  let sources =
    List.map (fun (p : Packet.t) -> p.Packet.src) !received
    |> List.sort_uniq Addr.compare
  in
  checki "only two addresses" 2 (List.length sources);
  checkb "but six shapes presented" true (Shape_shifter.shapes_used s = 6)

let test_shifter_rate_and_halt () =
  let sim, net, a, b, _ = pair () in
  let s =
    Shape_shifter.create ~shift_period:1.0 ~flow_id:1 ~rate:8e5
      ~dst:b.Node.addr ~spoof_base:(addr "50.0.0.0") net a
  in
  ignore (Sim.at sim 1.0 (fun () -> Shape_shifter.halt s));
  Sim.run ~until:3.0 sim;
  checkb "rate honored until halt" true
    (abs (Shape_shifter.sent_packets s - 100) <= 2);
  checki "bytes" (Shape_shifter.sent_packets s * 1000) (Shape_shifter.sent_bytes s)

(* --- Manual defense --------------------------------------------------------------- *)

module Manual_defense = Aitf_workload.Manual_defense

let manual_rig () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let attacker =
    Network.add_node net ~name:"atk" ~addr:(addr "20.0.0.66") ~as_id:1 Node.Host
  in
  let gw =
    Network.add_node net ~name:"gw" ~addr:(addr "10.0.0.1") ~as_id:2
      Node.Border_router
  in
  let victim =
    Network.add_node net ~name:"victim" ~addr:(addr "10.0.0.10") ~as_id:2
      Node.Host
  in
  ignore (Network.connect net attacker gw ~bandwidth:1e9 ~delay:0.005);
  ignore (Network.connect net gw victim ~bandwidth:1e9 ~delay:0.005);
  Network.compute_routes net;
  (sim, net, attacker, gw, victim)

let test_manual_blocks_after_delay () =
  let sim, net, attacker, gw, victim = manual_rig () in
  let m =
    Manual_defense.deploy ~response_time:2.0 ~gateway:gw ~victim net
  in
  let received = ref 0 in
  victim.Node.local_deliver <-
    (let prev = victim.Node.local_deliver in
     fun node pkt ->
       incr received;
       prev node pkt);
  let (_ : Traffic.t) =
    Traffic.cbr ~start:0. ~attack:true ~flow_id:1 ~rate:8e5
      ~dst:victim.Node.addr net attacker
  in
  Sim.run ~until:1.9 sim;
  let before = !received in
  checkb "flowing before response" true (before > 150);
  checki "operator still busy" 1 (Manual_defense.pending m);
  Sim.run ~until:4.0 sim;
  checki "filter installed" 1 (Manual_defense.filters_installed m);
  checki "flow seen once" 1 (Manual_defense.flows_seen m);
  (* At most a couple of in-flight packets after the filter landed. *)
  checkb "blocked after response time" true (!received - before <= 15)

let test_manual_defeated_by_shifting () =
  let sim, net, attacker, gw, victim = manual_rig () in
  let m =
    Manual_defense.deploy ~response_time:5.0 ~gateway:gw ~victim net
  in
  let (_ : Shape_shifter.t) =
    Shape_shifter.create ~pool:100 ~shift_period:1.0 ~flow_id:1 ~rate:8e5
      ~dst:victim.Node.addr ~spoof_base:(addr "50.0.0.0") net attacker
  in
  Sim.run ~until:10.0 sim;
  (* Filters landed, but every one for a shape that has already moved on:
     they never block anything. *)
  checkb "operator installed filters" true
    (Manual_defense.filters_installed m >= 4);
  checki "none of them ever matched" 0
    (Aitf_filter.Filter_table.blocked_packets (Manual_defense.filters m))

(* --- Report -------------------------------------------------------------------- *)

module Report = Aitf_workload.Report

let test_report_tables_render () =
  let r =
    Scenarios.run_chain
      { Scenarios.default_chain with Scenarios.duration = 5. }
  in
  let net = r.Scenarios.deployed.Aitf_topo.Chain.topo.Aitf_topo.Chain.net in
  let nodes = Report.node_table net in
  checkb "one row per node" true
    (List.length (Aitf_stats.Table.rows nodes)
    = List.length (Network.nodes net));
  let links = Report.link_table ~busy_only:false net in
  checkb "one row per directed link" true
    (List.length (Aitf_stats.Table.rows links)
    = List.length (Network.links net));
  let busy = Report.link_table net in
  checkb "busy-only hides idle links" true
    (List.length (Aitf_stats.Table.rows busy)
    < List.length (Aitf_stats.Table.rows links));
  let gws =
    Report.gateway_table r.Scenarios.deployed.Aitf_topo.Chain.victim_gateways
  in
  checkb "gateway rows" true (List.length (Aitf_stats.Table.rows gws) = 3);
  (* The tables must render without raising. *)
  checkb "renders" true
    (String.length (Aitf_stats.Table.render nodes) > 0
    && String.length (Aitf_stats.Table.render links) > 0
    && String.length (Aitf_stats.Table.render gws) > 0)

(* --- Chain scenario ---------------------------------------------------------- *)

let quick_params =
  {
    Scenarios.default_chain with
    Scenarios.config =
      {
        (Config.with_timescale Config.default 0.1) with
        Config.t_tmp = 0.5;
        grace = 0.3;
      };
    duration = 20.;
    seed = 1;
  }

let test_scenario_runs_and_suppresses () =
  let r = Scenarios.run_chain quick_params in
  checkb "r in (0, 0.2)" true
    (r.Scenarios.r_measured > 0. && r.Scenarios.r_measured < 0.2);
  checkb "requests sent" true (r.Scenarios.requests_sent >= 1);
  checkb "series sampled" true
    (Aitf_stats.Series.length r.Scenarios.victim_rate > 100);
  checkb "offered positive" true (r.Scenarios.attack_offered_bytes > 0.)

let test_scenario_deterministic () =
  let a = Scenarios.run_chain quick_params in
  let b = Scenarios.run_chain quick_params in
  checkb "same seed, same result" true
    (a.Scenarios.r_measured = b.Scenarios.r_measured
    && a.Scenarios.requests_sent = b.Scenarios.requests_sent)

let test_scenario_time_to_suppress () =
  let r = Scenarios.run_chain quick_params in
  match Scenarios.time_to_suppress r ~threshold:0.05 with
  | None -> Alcotest.fail "expected suppression"
  | Some t ->
    (* Attack starts at 1 s; suppression should land within a couple of
       seconds given Td = 0.1 and sub-second protocol latency. *)
    checkb "reasonable time" true (t > 1.0 && t < 5.0)

let test_flood_scenario () =
  let p =
    {
      Scenarios.default_flood with
      Scenarios.zombies = 6;
      flood_duration = 8.;
      flood_config =
        {
          (Config.with_timescale Config.default 0.1) with
          Config.grace = 0.3;
        };
    }
  in
  let on = Scenarios.run_flood p in
  let off = Scenarios.run_flood { p with Scenarios.with_aitf = false } in
  checki "all zombies placed" 6 on.Scenarios.zombies_placed;
  checkb "every zombie filtered at its leaf (once per T cycle)" true
    (on.Scenarios.leaf_filters >= 6 && on.Scenarios.leaf_filters mod 6 = 0);
  checki "no isp filters" 0 on.Scenarios.isp_filters;
  checkb "aitf protects goodput" true
    (on.Scenarios.legit_received_bytes >= off.Scenarios.legit_received_bytes);
  checkb "attack mostly blocked" true
    (on.Scenarios.flood_attack_received_bytes
    < 0.2 *. off.Scenarios.flood_attack_received_bytes);
  checkb "baseline has no deployment" true
    (off.Scenarios.hierarchy_deployed = None)

let test_flood_more_zombies_than_hosts () =
  (* Asking for more zombies than the hierarchy can hold places what fits. *)
  let p =
    { Scenarios.default_flood with Scenarios.zombies = 1000; flood_duration = 3. }
  in
  let r = Scenarios.run_flood p in
  (* 2 non-victim ISPs x 3 nets x 3 hosts = 18 slots *)
  checki "capped" 18 r.Scenarios.zombies_placed

let test_scenario_traceback_modes () =
  (* All three traceback selections must converge to a blocked flow. *)
  List.iter
    (fun mode ->
      let r =
        Scenarios.run_chain
          { quick_params with Scenarios.traceback = mode; duration = 15. }
      in
      checkb "suppressed" true (r.Scenarios.r_measured < 0.2))
    [ `Path_in_request; `Spie; `Ppm ]

let test_scenario_legit_traffic_counted () =
  let r =
    Scenarios.run_chain { quick_params with Scenarios.legit_rate = 1e5 }
  in
  checkb "good bytes measured" true (r.Scenarios.good_received_bytes > 0.);
  checkb "good offered" true (r.Scenarios.good_offered_bytes > 0.)

let () =
  Alcotest.run "aitf_workload"
    [
      ( "traffic",
        [
          Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
          Alcotest.test_case "start/stop" `Quick test_cbr_start_stop;
          Alcotest.test_case "halt" `Quick test_halt;
          Alcotest.test_case "gate" `Quick test_gate_suppression;
          Alcotest.test_case "spoofing" `Quick test_spoofing_applied;
          Alcotest.test_case "attack flag" `Quick test_attack_flag;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean_rate;
          Alcotest.test_case "label helper" `Quick test_label_helper;
          Alcotest.test_case "invalid rate" `Quick test_invalid_rate;
        ] );
      ( "request_driver",
        [
          Alcotest.test_case "rate and indices" `Quick
            test_driver_rate_and_indices;
          Alcotest.test_case "answers queries" `Quick
            test_driver_answers_queries;
        ] );
      ( "app",
        [
          Alcotest.test_case "transaction completes" `Quick
            test_app_transaction_completes;
          Alcotest.test_case "unreachable fails" `Quick
            test_app_fails_when_unreachable;
          Alcotest.test_case "retry recovers" `Quick test_app_retry_recovers;
          Alcotest.test_case "partial reply fails" `Quick
            test_app_partial_reply_times_out;
        ] );
      ( "shape_shifter",
        [
          Alcotest.test_case "rotates identity" `Quick
            test_shifter_rotates_identity;
          Alcotest.test_case "pool recycles" `Quick test_shifter_pool_recycles;
          Alcotest.test_case "rate and halt" `Quick test_shifter_rate_and_halt;
        ] );
      ( "manual_defense",
        [
          Alcotest.test_case "blocks after delay" `Quick
            test_manual_blocks_after_delay;
          Alcotest.test_case "defeated by shifting" `Quick
            test_manual_defeated_by_shifting;
        ] );
      ( "report",
        [ Alcotest.test_case "tables render" `Quick test_report_tables_render ] );
      ( "scenario",
        [
          Alcotest.test_case "runs and suppresses" `Quick
            test_scenario_runs_and_suppresses;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "time to suppress" `Quick
            test_scenario_time_to_suppress;
          Alcotest.test_case "legit traffic" `Quick
            test_scenario_legit_traffic_counted;
          Alcotest.test_case "traceback modes" `Quick
            test_scenario_traceback_modes;
          Alcotest.test_case "flood" `Quick test_flood_scenario;
          Alcotest.test_case "flood overflow" `Quick
            test_flood_more_zombies_than_hosts;
        ] );
    ]
