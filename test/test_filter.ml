(* Tests for aitf_filter: flow labels, filter tables, shadow cache and
   token-bucket policers. *)

module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_filter

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let addr = Addr.of_string

let data_packet ?spoofed_src ?(proto = 17) ~src ~dst () =
  Packet.make ?spoofed_src ~proto ~src ~dst ~size:1000
    (Packet.Data { flow_id = 0; attack = true })

(* --- Flow labels ---------------------------------------------------------- *)

let test_label_host_pair_match () =
  let l = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2") in
  checkb "match" true
    (Flow_label.matches l (data_packet ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ()));
  checkb "wrong src" false
    (Flow_label.matches l (data_packet ~src:(addr "1.0.0.9") ~dst:(addr "2.0.0.2") ()));
  checkb "wrong dst" false
    (Flow_label.matches l (data_packet ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.9") ()))

let test_label_matches_header_src () =
  (* Spoofed packets match labels naming the spoofed (header) address. *)
  let l = Flow_label.host_pair (addr "9.9.9.9") (addr "2.0.0.2") in
  let pkt =
    data_packet ~spoofed_src:(addr "9.9.9.9") ~src:(addr "1.0.0.1")
      ~dst:(addr "2.0.0.2") ()
  in
  checkb "spoofed header matches" true (Flow_label.matches l pkt)

let test_label_net_and_any () =
  let l = Flow_label.from_net (Addr.prefix_of_string "10.0.0.0/8") (addr "2.0.0.2") in
  checkb "prefix src" true
    (Flow_label.matches l (data_packet ~src:(addr "10.3.4.5") ~dst:(addr "2.0.0.2") ()));
  checkb "outside prefix" false
    (Flow_label.matches l (data_packet ~src:(addr "11.0.0.1") ~dst:(addr "2.0.0.2") ()));
  let from = Flow_label.from_host (addr "1.0.0.1") in
  checkb "any dst" true
    (Flow_label.matches from (data_packet ~src:(addr "1.0.0.1") ~dst:(addr "5.5.5.5") ()))

let test_label_proto () =
  let l = Flow_label.v ~proto:6 (Flow_label.Host (addr "1.0.0.1")) Flow_label.Any in
  checkb "matching proto" true
    (Flow_label.matches l (data_packet ~proto:6 ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ()));
  checkb "other proto" false
    (Flow_label.matches l (data_packet ~proto:17 ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ()))

let test_label_ports () =
  let l =
    Flow_label.v ~dport:80 (Flow_label.Host (addr "1.0.0.1")) Flow_label.Any
  in
  let pkt ~dport =
    Packet.make ~dport ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:10
      (Packet.Data { flow_id = 0; attack = true })
  in
  checkb "port 80 matches" true (Flow_label.matches l (pkt ~dport:80));
  checkb "port 81 misses" false (Flow_label.matches l (pkt ~dport:81));
  (* The attacker switching ports dodges a port-qualified filter but not a
     host-pair one — the intro's "oscillate ... port numbers" point. *)
  let unqualified = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2") in
  checkb "host pair blind to ports" true
    (Flow_label.matches unqualified (pkt ~dport:81));
  checkb "port label not exact" false (Flow_label.is_exact l);
  checkb "unqualified subsumes qualified" true
    (Flow_label.subsumes
       (Flow_label.v (Flow_label.Host (addr "1.0.0.1")) Flow_label.Any)
       l);
  checkb "qualified does not subsume" false
    (Flow_label.subsumes l
       (Flow_label.v (Flow_label.Host (addr "1.0.0.1")) Flow_label.Any))

let test_label_of_string () =
  let check_roundtrip s =
    checks s s (Flow_label.to_string (Flow_label.of_string s))
  in
  List.iter check_roundtrip
    [
      "1.2.3.4 -> 5.6.7.8";
      "* -> 5.6.7.8";
      "10.0.0.0/8 -> *";
      "1.2.3.4 -> 5.6.7.8 proto=6 sport=1024 dport=80";
    ];
  List.iter
    (fun s ->
      checkb s true
        (try
           ignore (Flow_label.of_string s);
           false
         with Invalid_argument _ -> true))
    [ ""; "1.2.3.4"; "1.2.3.4 -> "; "a -> b"; "* -> * bogus=1";
      "* -> * proto=abc"; "* -> * proto=-1" ]

let test_label_subsumes () =
  let wide = Flow_label.from_net (Addr.prefix_of_string "10.0.0.0/8") (addr "2.0.0.2") in
  let narrow = Flow_label.host_pair (addr "10.1.1.1") (addr "2.0.0.2") in
  checkb "net subsumes host" true (Flow_label.subsumes wide narrow);
  checkb "host does not subsume net" false (Flow_label.subsumes narrow wide);
  checkb "reflexive" true (Flow_label.subsumes wide wide);
  let any = Flow_label.v Flow_label.Any Flow_label.Any in
  checkb "any subsumes everything" true (Flow_label.subsumes any narrow);
  let with_proto = { narrow with Flow_label.proto = Some 6 } in
  checkb "no-proto subsumes proto" true (Flow_label.subsumes narrow with_proto);
  checkb "proto does not subsume no-proto" false
    (Flow_label.subsumes with_proto narrow)

let test_label_equal_compare () =
  let a = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2") in
  let b = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2") in
  let c = Flow_label.host_pair (addr "1.0.0.2") (addr "2.0.0.2") in
  checkb "equal" true (Flow_label.equal a b);
  checki "compare equal" 0 (Flow_label.compare a b);
  checkb "hash equal" true (Flow_label.hash a = Flow_label.hash b);
  checkb "different" false (Flow_label.equal a c)

let test_label_is_exact () =
  checkb "host pair exact" true
    (Flow_label.is_exact (Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2")));
  checkb "from_host not exact" false
    (Flow_label.is_exact (Flow_label.from_host (addr "1.0.0.1")))

let label_gen =
  let open QCheck.Gen in
  let sel =
    frequency
      [
        (1, return Flow_label.Any);
        (3, map (fun i -> Flow_label.Host (Int32.of_int i)) (int_bound 1000));
        ( 2,
          map2
            (fun i len -> Flow_label.Net (Addr.prefix (Int32.of_int i) len))
            (int_bound 1000) (int_bound 32) );
      ]
  in
  let proto = opt (int_bound 255) in
  map3
    (fun s d p ->
      { Flow_label.src = s; dst = d; proto = p; sport = None; dport = None })
    sel sel proto

let label_arb = QCheck.make label_gen

let subsumption_implies_match =
  QCheck.Test.make ~name:"subsumption is consistent with matching" ~count:500
    (QCheck.pair label_arb (QCheck.pair QCheck.(int_bound 1000) QCheck.(int_bound 1000)))
    (fun (l, (s, d)) ->
      let pkt =
        Packet.make ~src:(Int32.of_int s) ~dst:(Int32.of_int d) ~size:10
          (Packet.Data { flow_id = 0; attack = false })
      in
      (* If l subsumes the exact host-pair label of the packet, l must match
         the packet. *)
      let exact = Flow_label.host_pair pkt.Packet.src pkt.Packet.dst in
      (not (Flow_label.subsumes l exact)) || Flow_label.matches l pkt)

let subsumes_reflexive_transitive =
  QCheck.Test.make ~name:"subsumption is reflexive and transitive" ~count:300
    (QCheck.triple label_arb label_arb label_arb)
    (fun (a, b, c) ->
      Flow_label.subsumes a a
      && ((not (Flow_label.subsumes a b && Flow_label.subsumes b c))
         || Flow_label.subsumes a c))

let subsumes_antisymmetric =
  QCheck.Test.make ~name:"mutual subsumption implies equality" ~count:300
    (QCheck.pair label_arb label_arb)
    (fun (a, b) ->
      (not (Flow_label.subsumes a b && Flow_label.subsumes b a))
      || Flow_label.equal a b)

let to_string_roundtrip =
  QCheck.Test.make ~name:"of_string inverts to_string" ~count:300 label_arb
    (fun l -> Flow_label.equal l (Flow_label.of_string (Flow_label.to_string l)))

let compare_total_order =
  QCheck.Test.make ~name:"compare is antisymmetric and equal-consistent"
    ~count:500 (QCheck.pair label_arb label_arb) (fun (a, b) ->
      let c1 = Flow_label.compare a b and c2 = Flow_label.compare b a in
      (c1 = 0) = (c2 = 0)
      && (c1 > 0) = (c2 < 0)
      && Flow_label.equal a b = (c1 = 0))

(* --- Filter table ---------------------------------------------------------- *)

let mk_table ?(capacity = 4) () =
  let sim = Sim.create () in
  (sim, Filter_table.create sim ~capacity)

let l1 = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2")
let l2 = Flow_label.host_pair (addr "1.0.0.2") (addr "2.0.0.2")
let p1 () = data_packet ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ()

let test_table_install_and_block () =
  let _sim, t = mk_table () in
  (match Filter_table.install t l1 ~duration:10. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "unexpected full");
  checkb "blocks match" true (Filter_table.blocks t (p1 ()));
  checkb "other flow passes" false
    (Filter_table.blocks t (data_packet ~src:(addr "5.0.0.5") ~dst:(addr "2.0.0.2") ()));
  checki "occupancy" 1 (Filter_table.occupancy t);
  checki "blocked packets" 1 (Filter_table.blocked_packets t);
  checki "blocked bytes" 1000 (Filter_table.blocked_bytes t)

let test_table_expiry () =
  let sim, t = mk_table () in
  ignore (Filter_table.install t l1 ~duration:5.);
  Sim.run ~until:4.9 sim;
  checkb "still blocking" true (Filter_table.blocks t (p1 ()));
  Sim.run ~until:5.1 sim;
  checkb "expired" false (Filter_table.blocks t (p1 ()));
  checki "occupancy zero" 0 (Filter_table.occupancy t)

let test_table_capacity () =
  let _sim, t = mk_table ~capacity:2 () in
  ignore (Filter_table.install t l1 ~duration:10.);
  ignore (Filter_table.install t l2 ~duration:10.);
  (match
     Filter_table.install t
       (Flow_label.host_pair (addr "1.0.0.3") (addr "2.0.0.2"))
       ~duration:10.
   with
  | Ok _ -> Alcotest.fail "expected Table_full"
  | Error `Table_full -> ());
  checki "rejected" 1 (Filter_table.rejected t);
  checki "peak" 2 (Filter_table.peak_occupancy t)

let test_table_refresh_same_label () =
  let sim, t = mk_table ~capacity:1 () in
  ignore (Filter_table.install t l1 ~duration:5.);
  Sim.run ~until:3. sim;
  (* Re-install: must not consume a slot and must extend expiry. *)
  (match Filter_table.install t l1 ~duration:5. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "refresh must not hit capacity");
  checki "occupancy still 1" 1 (Filter_table.occupancy t);
  Sim.run ~until:6. sim;
  checkb "survives past original expiry" true (Filter_table.blocks t (p1 ()));
  Sim.run ~until:8.1 sim;
  checkb "expires at extended time" false (Filter_table.blocks t (p1 ()))

let test_table_remove () =
  let _sim, t = mk_table () in
  let h =
    match Filter_table.install t l1 ~duration:10. with
    | Ok h -> h
    | Error _ -> Alcotest.fail "install failed"
  in
  Filter_table.remove t h;
  checkb "no longer blocking" false (Filter_table.blocks t (p1 ()));
  checkb "handle dead" false (Filter_table.live h);
  Filter_table.remove t h (* idempotent *)

let test_table_slot_reusable_after_expiry () =
  let sim, t = mk_table ~capacity:1 () in
  ignore (Filter_table.install t l1 ~duration:1.);
  Sim.run ~until:2. sim;
  (match Filter_table.install t l2 ~duration:1. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "slot should be free");
  checki "peak stays 1" 1 (Filter_table.peak_occupancy t)

let test_table_wildcard_entries () =
  let _sim, t = mk_table () in
  ignore
    (Filter_table.install t
       (Flow_label.from_net (Addr.prefix_of_string "10.0.0.0/8") (addr "2.0.0.2"))
       ~duration:10.);
  checkb "wildcard blocks" true
    (Filter_table.blocks t (data_packet ~src:(addr "10.9.9.9") ~dst:(addr "2.0.0.2") ()));
  checkb "outside passes" false
    (Filter_table.blocks t (data_packet ~src:(addr "11.0.0.1") ~dst:(addr "2.0.0.2") ()))

let test_table_would_block_no_stats () =
  let _sim, t = mk_table () in
  ignore (Filter_table.install t l1 ~duration:10.);
  checkb "would block" true (Filter_table.would_block t (p1 ()));
  checki "no hit recorded" 0 (Filter_table.blocked_packets t)

let test_table_hit_tracking () =
  let sim, t = mk_table () in
  let h =
    match Filter_table.install t l1 ~duration:10. with
    | Ok h -> h
    | Error _ -> Alcotest.fail "install"
  in
  ignore (Sim.at sim 2. (fun () -> ignore (Filter_table.blocks t (p1 ()))));
  ignore (Sim.at sim 3. (fun () -> ignore (Filter_table.blocks t (p1 ()))));
  Sim.run ~until:4. sim;
  checki "hits" 2 (Filter_table.hits h);
  checki "hit bytes" 2000 (Filter_table.hit_bytes h);
  checkb "last hit time" true (Filter_table.last_hit h = Some 3.)

let test_table_find () =
  let _sim, t = mk_table () in
  ignore (Filter_table.install t l1 ~duration:10.);
  checkb "find live" true (Option.is_some (Filter_table.find t l1));
  checkb "find miss" true (Filter_table.find t l2 = None)

let test_table_evict_subsumed () =
  let _sim, t = mk_table ~capacity:4 () in
  ignore (Filter_table.install t l1 ~duration:10.);
  ignore (Filter_table.install t l2 ~duration:10.);
  ignore
    (Filter_table.install t
       (Flow_label.host_pair (addr "1.0.0.1") (addr "3.0.0.3"))
       ~duration:10.);
  (* The wildcard any->2.0.0.2 covers l1 and l2 but not the third entry. *)
  let agg = Flow_label.v Flow_label.Any (Flow_label.Host (addr "2.0.0.2")) in
  checki "two evicted" 2 (Filter_table.evict_subsumed t agg);
  checki "occupancy" 1 (Filter_table.occupancy t);
  checkb "uncovered survives" true
    (Filter_table.would_block t
       (data_packet ~src:(addr "1.0.0.1") ~dst:(addr "3.0.0.3") ()));
  (* And now the aggregate fits. *)
  (match Filter_table.install t agg ~duration:10. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "room was made");
  checkb "aggregate blocks both old flows" true
    (Filter_table.would_block t (p1 ())
    && Filter_table.would_block t
         (data_packet ~src:(addr "1.0.0.2") ~dst:(addr "2.0.0.2") ()))

let test_table_evict_subsumed_none () =
  let _sim, t = mk_table () in
  ignore (Filter_table.install t l1 ~duration:10.);
  let other = Flow_label.v Flow_label.Any (Flow_label.Host (addr "9.9.9.9")) in
  checki "nothing covered" 0 (Filter_table.evict_subsumed t other);
  checki "occupancy intact" 1 (Filter_table.occupancy t)

let test_table_proto_probe () =
  (* An exact label qualified by protocol must match packets of that
     protocol via the hash probe. *)
  let _sim, t = mk_table () in
  ignore
    (Filter_table.install t { l1 with Flow_label.proto = Some 6 } ~duration:10.);
  checkb "proto 6 blocked" true
    (Filter_table.blocks t
       (data_packet ~proto:6 ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ()));
  checkb "proto 17 passes" false
    (Filter_table.blocks t
       (data_packet ~proto:17 ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ()))

let test_table_rate_limited_entry () =
  let sim, t = mk_table () in
  (* 2000 B/s allowance; 1000 B packets arriving at 10/s: ~2 per second
     pass, the rest are dropped. *)
  (match Filter_table.install ~rate_limit:2000. t l1 ~duration:100. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "install");
  let passed = ref 0 and dropped = ref 0 in
  for i = 0 to 99 do
    ignore
      (Sim.at sim
         (0.1 *. float_of_int (i + 1))
         (fun () ->
           if Filter_table.blocks t (p1 ()) then incr dropped else incr passed))
  done;
  Sim.run sim;
  (* 10 s at 2 pkt/s + burst ~= 22; allow slack. *)
  checkb "conforming share passes" true (abs (!passed - 22) <= 3);
  checki "the rest dropped" 100 (!passed + !dropped);
  checkb "drops counted as hits" true (Filter_table.blocked_packets t = !dropped)

let test_table_block_entry_blocks_everything () =
  let _sim, t = mk_table () in
  ignore (Filter_table.install t l1 ~duration:100.);
  for _ = 1 to 10 do
    checkb "always blocked" true (Filter_table.blocks t (p1 ()))
  done

(* Property: with lazy capacity, a table never blocks a packet unless some
   installed-and-unexpired label matches it. *)
let table_soundness =
  QCheck.Test.make ~name:"table blocks iff a live label matches" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 10) (pair QCheck.(int_bound 50) QCheck.(int_bound 50)))
    (fun pairs ->
      let sim = Sim.create () in
      let t = Filter_table.create sim ~capacity:100 in
      let labels =
        List.map
          (fun (s, d) ->
            let l = Flow_label.host_pair (Int32.of_int s) (Int32.of_int d) in
            ignore (Filter_table.install t l ~duration:10.);
            l)
          pairs
      in
      let probe =
        Packet.make ~src:25l ~dst:25l ~size:10
          (Packet.Data { flow_id = 0; attack = false })
      in
      Filter_table.would_block t probe
      = List.exists (fun l -> Flow_label.matches l probe) labels)

(* --- Install under pressure, wildcard ordering, refresh semantics --------- *)

let test_table_install_evicts_subsumed () =
  (* A full table makes room for an aggregate by evicting what it covers
     instead of answering Table_full. *)
  let _sim, t = mk_table ~capacity:2 () in
  ignore (Filter_table.install t l1 ~duration:10.);
  ignore (Filter_table.install t l2 ~duration:10.);
  let agg = Flow_label.v Flow_label.Any (Flow_label.Host (addr "2.0.0.2")) in
  (match Filter_table.install t agg ~duration:10. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "aggregate must evict what it subsumes");
  checki "occupancy" 1 (Filter_table.occupancy t);
  checki "nothing rejected" 0 (Filter_table.rejected t);
  checkb "aggregate blocks the old flows" true (Filter_table.blocks t (p1 ()))

let test_table_install_full_no_subsumed () =
  (* The eviction attempt is a no-op when the incoming label covers nothing;
     the rejection is still counted. *)
  let _sim, t = mk_table ~capacity:2 () in
  ignore (Filter_table.install t l1 ~duration:10.);
  ignore (Filter_table.install t l2 ~duration:10.);
  (match
     Filter_table.install t
       (Flow_label.host_pair (addr "5.0.0.5") (addr "6.0.0.6"))
       ~duration:10.
   with
  | Ok _ -> Alcotest.fail "expected Table_full"
  | Error `Table_full -> ());
  checki "rejected" 1 (Filter_table.rejected t);
  checki "occupancy intact" 2 (Filter_table.occupancy t)

let test_table_wildcard_most_specific_first () =
  (* Whatever the install order, the narrowest matching wildcard takes the
     hit — so its stats name the actual attack, not a catch-all. *)
  let any = Flow_label.v Flow_label.Any (Flow_label.Host (addr "2.0.0.2")) in
  let net8 =
    Flow_label.from_net (Addr.prefix_of_string "1.0.0.0/8") (addr "2.0.0.2")
  in
  List.iter
    (fun order ->
      let _sim, t = mk_table () in
      List.iter (fun l -> ignore (Filter_table.install t l ~duration:10.)) order;
      match Filter_table.blocking_entry t (p1 ()) with
      | None -> Alcotest.fail "must block"
      | Some h ->
        checkb "most specific wins" true
          (Flow_label.equal (Filter_table.label h) net8);
        checki "hit on the specific entry" 1 (Filter_table.hits h))
    [ [ any; net8 ]; [ net8; any ] ]

let test_table_wildcard_tie_deterministic () =
  (* Equal specificity: the tie-break is the label total order, not install
     recency, so replayed runs block with the same entry. *)
  let a =
    Flow_label.v
      (Flow_label.Net (Addr.prefix_of_string "1.0.0.0/8"))
      (Flow_label.Host (addr "2.0.0.2"))
  in
  let b =
    Flow_label.v
      (Flow_label.Host (addr "1.0.0.1"))
      (Flow_label.Net (Addr.prefix_of_string "2.0.0.0/8"))
  in
  let winner order =
    let _sim, t = mk_table () in
    List.iter (fun l -> ignore (Filter_table.install t l ~duration:10.)) order;
    match Filter_table.blocking_entry t (p1 ()) with
    | Some h -> Filter_table.label h
    | None -> Alcotest.fail "must block"
  in
  checkb "order-independent winner" true
    (Flow_label.equal (winner [ a; b ]) (winner [ b; a ]))

let test_table_refresh_applies_rate_limit () =
  (* A refresh that asks for a rate limit converts the blocking entry into a
     rate limiter (the filter_action=Rate_limit escalation path). *)
  let _sim, t = mk_table ~capacity:1 () in
  ignore (Filter_table.install t l1 ~duration:100.);
  checkb "blocks before refresh" true (Filter_table.blocks t (p1 ()));
  (match Filter_table.install ~rate_limit:2000. t l1 ~duration:100. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "refresh");
  (* 2000 B/s with a 2000 B burst: two 1000 B packets conform, then drop. *)
  checkb "conforming passes" false (Filter_table.blocks t (p1 ()));
  checkb "still conforming" false (Filter_table.blocks t (p1 ()));
  checkb "over budget drops" true (Filter_table.blocks t (p1 ()))

let test_table_accounting_mixed () =
  (* Occupancy / peak / rejected across a mixed install-evict-expire run. *)
  let sim, t = mk_table ~capacity:3 () in
  let a = Flow_label.host_pair (addr "1.0.0.1") (addr "2.0.0.2") in
  let b = Flow_label.host_pair (addr "1.0.0.2") (addr "2.0.0.2") in
  let c = Flow_label.host_pair (addr "1.0.0.3") (addr "2.0.0.2") in
  let d = Flow_label.host_pair (addr "1.0.0.4") (addr "3.0.0.3") in
  ignore (Filter_table.install t a ~duration:2.);
  ignore (Filter_table.install t b ~duration:10.);
  checki "peak after two" 2 (Filter_table.peak_occupancy t);
  Sim.run ~until:3. sim;
  checki "one expired" 1 (Filter_table.occupancy t);
  ignore (Filter_table.install t c ~duration:10.);
  ignore (Filter_table.install t d ~duration:10.);
  checki "full" 3 (Filter_table.occupancy t);
  checki "peak" 3 (Filter_table.peak_occupancy t);
  (match
     Filter_table.install t
       (Flow_label.host_pair (addr "5.0.0.5") (addr "6.0.0.6"))
       ~duration:10.
   with
  | Ok _ -> Alcotest.fail "expected Table_full"
  | Error `Table_full -> ());
  checki "rejected counted" 1 (Filter_table.rejected t);
  let agg = Flow_label.v Flow_label.Any (Flow_label.Host (addr "2.0.0.2")) in
  (match Filter_table.install t agg ~duration:10. with
  | Ok _ -> ()
  | Error `Table_full -> Alcotest.fail "subsumption frees b and c");
  checki "b+c folded into the aggregate" 2 (Filter_table.occupancy t);
  checki "peak unchanged by evictions" 3 (Filter_table.peak_occupancy t);
  checkb "uncovered d survives" true
    (Filter_table.would_block t
       (data_packet ~src:(addr "1.0.0.4") ~dst:(addr "3.0.0.3") ()))

(* --- Overload manager ------------------------------------------------------ *)

let mk_overload ?policy ~capacity () =
  let sim = Sim.create () in
  let table = Filter_table.create sim ~capacity in
  (sim, table, Overload.create ?policy sim table)

let host_to src = Flow_label.host_pair (addr src) (addr "2.0.0.2")

let ok = function
  | Ok h -> h
  | Error `Table_full -> Alcotest.fail "unexpected Table_full"

let test_overload_transparent_below_watermark () =
  let _sim, table, m = mk_overload ~capacity:10 () in
  for i = 1 to 5 do
    ignore (ok (Overload.install m (host_to (Printf.sprintf "1.0.0.%d" i)) ~duration:10.))
  done;
  checkb "not degraded" false (Overload.degraded m);
  checki "no aggregation" 0 (Overload.aggregations m);
  checki "no eviction" 0 (Overload.evictions m);
  checki "plain occupancy" 5 (Filter_table.occupancy table)

let test_overload_degraded_is_pure_read () =
  (* Occupancy crosses the watermark, but transitions happen on installs
     only — polling the gauge must never flip the mode. *)
  let _sim, table, m =
    mk_overload
      ~policy:{ Overload.default_policy with Overload.high_watermark = 0.9 }
      ~capacity:4 ()
  in
  for i = 1 to 4 do
    ignore (ok (Overload.install m (host_to (Printf.sprintf "1.0.0.%d" i)) ~duration:10.))
  done;
  checki "table full" 4 (Filter_table.occupancy table);
  for _ = 1 to 5 do
    checkb "gauge stays put" false (Overload.degraded m)
  done

let test_overload_aggregates_under_pressure () =
  let _sim, table, m =
    mk_overload
      ~policy:
        {
          Overload.high_watermark = 0.9;
          (* low enough that the manager stays degraded after compaction, so
             the covered-label shortcut below is exercised *)
          low_watermark = 0.25;
          max_per_requestor = max_int;
          min_aggregate = 2;
        }
      ~capacity:4 ()
  in
  (* Sources 1.0.0.0-1.0.0.3 share a /30; filling the table then asking for
     a fifth filter must fold them into that prefix. *)
  for i = 0 to 3 do
    ignore (ok (Overload.install m (host_to (Printf.sprintf "1.0.0.%d" i)) ~duration:10.))
  done;
  let h = ok (Overload.install m (host_to "1.0.0.4") ~duration:10.) in
  checki "one aggregation" 1 (Overload.aggregations m);
  checki "four evicted into it" 4 (Overload.evictions m);
  checki "aggregate + newcomer" 2 (Filter_table.occupancy table);
  checkb "newcomer got its own exact entry" true
    (Flow_label.is_exact (Filter_table.label h));
  List.iter
    (fun s ->
      checkb (s ^ " still blocked") true
        (Filter_table.would_block table
           (data_packet ~src:(addr s) ~dst:(addr "2.0.0.2") ())))
    [ "1.0.0.0"; "1.0.0.1"; "1.0.0.2"; "1.0.0.3"; "1.0.0.4" ];
  checkb "outside the prefix passes" false
    (Filter_table.would_block table
       (data_packet ~src:(addr "1.0.0.9") ~dst:(addr "2.0.0.2") ()));
  (* A label the aggregate covers refreshes it rather than re-growing the
     exact population. *)
  let again = ok (Overload.install m (host_to "1.0.0.2") ~duration:10.) in
  checkb "covered label reuses the aggregate" false
    (Flow_label.is_exact (Filter_table.label again));
  checki "no new entry" 2 (Filter_table.occupancy table)

let test_overload_priority_eviction () =
  (* Distinct destinations: nothing to aggregate, so the manager evicts the
     entry with the lowest hit rate instead of refusing. *)
  let sim, table, m =
    mk_overload
      ~policy:
        {
          Overload.high_watermark = 0.;
          low_watermark = 0.;
          max_per_requestor = max_int;
          min_aggregate = 2;
        }
      ~capacity:2 ()
  in
  let a = ok (Overload.install m (Flow_label.host_pair (addr "1.0.0.1") (addr "8.0.0.1")) ~duration:10.) in
  let b = ok (Overload.install m (Flow_label.host_pair (addr "1.0.0.2") (addr "8.0.0.2")) ~duration:10.) in
  Sim.run ~until:1. sim;
  (* b earns a hit; a blocks nothing. *)
  ignore
    (Filter_table.blocks table
       (data_packet ~src:(addr "1.0.0.2") ~dst:(addr "8.0.0.2") ()));
  let c = ok (Overload.install m (Flow_label.host_pair (addr "1.0.0.3") (addr "8.0.0.3")) ~duration:10.) in
  checkb "useless entry evicted" false (Filter_table.live a);
  checkb "working entry spared" true (Filter_table.live b);
  checkb "newcomer live" true (Filter_table.live c);
  checki "one eviction" 1 (Overload.evictions m)

let test_overload_requestor_cap () =
  (* A requestor at its cap pays with its own least valuable entry. *)
  let _sim, table, m =
    mk_overload
      ~policy:
        {
          Overload.high_watermark = 0.;
          low_watermark = 0.;
          max_per_requestor = 2;
          min_aggregate = 2;
        }
      ~capacity:8 ()
  in
  let req = addr "10.0.0.7" in
  let inst s d =
    ok
      (Overload.install ~requestor:req m
         (Flow_label.host_pair (addr s) (addr d))
         ~duration:10.)
  in
  let a = inst "1.0.0.1" "8.0.0.1" in
  let b = inst "1.0.0.2" "8.0.0.2" in
  let c = inst "1.0.0.3" "8.0.0.3" in
  checki "cap held at 2" 2 (Filter_table.occupancy table);
  checki "own entry evicted" 1 (Overload.evictions m);
  checkb "newcomer live" true (Filter_table.live c);
  checkb "exactly one elder survived" true
    (Filter_table.live a <> Filter_table.live b)

let test_overload_collateral_accounting () =
  let _sim, table, m =
    mk_overload
      ~policy:
        {
          Overload.high_watermark = 0.9;
          low_watermark = 0.5;
          max_per_requestor = max_int;
          min_aggregate = 2;
        }
      ~capacity:4 ()
  in
  for i = 0 to 3 do
    ignore (ok (Overload.install m (host_to (Printf.sprintf "1.0.0.%d" i)) ~duration:10.))
  done;
  ignore (ok (Overload.install m (host_to "1.0.0.4") ~duration:10.));
  let agg =
    match
      Filter_table.blocking_entry table
        (data_packet ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ())
    with
    | Some h -> h
    | None -> Alcotest.fail "aggregate must block"
  in
  let legit =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:500
      (Packet.Data { flow_id = 0; attack = false })
  in
  let attack =
    Packet.make ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") ~size:500
      (Packet.Data { flow_id = 0; attack = true })
  in
  Overload.note_blocked m agg legit;
  Overload.note_blocked m agg attack;
  checki "legit drop counted" 1 (Overload.collateral_packets m);
  checki "bytes counted" 500 (Overload.collateral_bytes m);
  (* Drops by an exact (non-aggregate) entry are the filter doing its job. *)
  let exact =
    match
      Filter_table.blocking_entry table
        (data_packet ~src:(addr "1.0.0.4") ~dst:(addr "2.0.0.2") ())
    with
    | Some h -> h
    | None -> Alcotest.fail "exact must block"
  in
  Overload.note_blocked m exact legit;
  checki "exact drops are not collateral" 1 (Overload.collateral_packets m)

let test_overload_policy_validation () =
  let sim = Sim.create () in
  let table = Filter_table.create sim ~capacity:4 in
  let bad policy =
    try
      ignore (Overload.create ~policy sim table);
      false
    with Invalid_argument _ -> true
  in
  checkb "inverted watermarks" true
    (bad { Overload.default_policy with Overload.high_watermark = 0.3; low_watermark = 0.6 });
  checkb "zero requestor cap" true
    (bad { Overload.default_policy with Overload.max_per_requestor = 0 });
  checkb "aggregate of one" true
    (bad { Overload.default_policy with Overload.min_aggregate = 1 })

(* --- Shadow cache ---------------------------------------------------------- *)

let test_shadow_insert_find () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:4 in
  (match Shadow_cache.insert c l1 ~ttl:10. "state" with
  | Ok e -> checkb "data" true (Shadow_cache.data e = "state")
  | Error `Full -> Alcotest.fail "full");
  checkb "find" true (Option.is_some (Shadow_cache.find c l1));
  checkb "miss" true (Shadow_cache.find c l2 = None);
  checki "occupancy" 1 (Shadow_cache.occupancy c)

let test_shadow_match_packet () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:4 in
  ignore (Shadow_cache.insert c l1 ~ttl:10. 1);
  (match Shadow_cache.match_packet c (p1 ()) with
  | Some e -> checki "data via packet" 1 (Shadow_cache.data e)
  | None -> Alcotest.fail "expected match");
  checkb "other packet misses" true
    (Shadow_cache.match_packet c
       (data_packet ~src:(addr "7.7.7.7") ~dst:(addr "2.0.0.2") ())
    = None)

let test_shadow_ttl () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:4 in
  ignore (Shadow_cache.insert c l1 ~ttl:5. ());
  Sim.run ~until:5.1 sim;
  checkb "expired" true (Shadow_cache.find c l1 = None);
  checki "occupancy" 0 (Shadow_cache.occupancy c)

let test_shadow_refresh () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:4 in
  let e =
    match Shadow_cache.insert c l1 ~ttl:5. () with
    | Ok e -> e
    | Error `Full -> Alcotest.fail "full"
  in
  ignore (Sim.at sim 4. (fun () -> Shadow_cache.refresh c e ~ttl:5.));
  Sim.run ~until:8. sim;
  checkb "still live after refresh" true (Option.is_some (Shadow_cache.find c l1));
  Sim.run ~until:9.1 sim;
  checkb "expires at refreshed deadline" true (Shadow_cache.find c l1 = None)

let test_shadow_capacity () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:2 in
  ignore (Shadow_cache.insert c l1 ~ttl:10. ());
  ignore (Shadow_cache.insert c l2 ~ttl:10. ());
  (match
     Shadow_cache.insert c
       (Flow_label.host_pair (addr "1.0.0.3") (addr "2.0.0.2"))
       ~ttl:10. ()
   with
  | Ok _ -> Alcotest.fail "expected Full"
  | Error `Full -> ());
  checki "rejected" 1 (Shadow_cache.rejected c);
  checki "peak" 2 (Shadow_cache.peak_occupancy c)

let test_shadow_reinsert_replaces () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:1 in
  ignore (Shadow_cache.insert c l1 ~ttl:10. 1);
  (match Shadow_cache.insert c l1 ~ttl:10. 2 with
  | Ok e -> checki "data replaced" 2 (Shadow_cache.data e)
  | Error `Full -> Alcotest.fail "reinsert must not hit capacity");
  checki "occupancy 1" 1 (Shadow_cache.occupancy c)

let test_shadow_remove_and_iter () =
  let sim = Sim.create () in
  let c = Shadow_cache.create sim ~capacity:4 in
  let e =
    match Shadow_cache.insert c l1 ~ttl:10. () with
    | Ok e -> e
    | Error `Full -> Alcotest.fail "full"
  in
  ignore (Shadow_cache.insert c l2 ~ttl:10. ());
  Shadow_cache.remove c e;
  let n = ref 0 in
  Shadow_cache.iter c (fun _ -> incr n);
  checki "one live entry" 1 !n;
  checkb "removed entry dead" false (Shadow_cache.live e)

(* --- Token bucket ---------------------------------------------------------- *)

let test_bucket_burst_then_deny () =
  let b = Token_bucket.create ~rate:1.0 ~burst:3.0 in
  checkb "1" true (Token_bucket.allow b ~now:0.);
  checkb "2" true (Token_bucket.allow b ~now:0.);
  checkb "3" true (Token_bucket.allow b ~now:0.);
  checkb "4 denied" false (Token_bucket.allow b ~now:0.);
  checki "admitted" 3 (Token_bucket.admitted b);
  checki "denied" 1 (Token_bucket.denied b)

let test_bucket_refill () =
  let b = Token_bucket.create ~rate:2.0 ~burst:2.0 in
  checkb "drain 1" true (Token_bucket.allow b ~now:0.);
  checkb "drain 2" true (Token_bucket.allow b ~now:0.);
  checkb "empty" false (Token_bucket.allow b ~now:0.);
  checkb "after 0.5s one token" true (Token_bucket.allow b ~now:0.5);
  checkb "not two" false (Token_bucket.allow b ~now:0.5)

let test_bucket_burst_cap () =
  let b = Token_bucket.create ~rate:10.0 ~burst:2.0 in
  (* Long idle must not accumulate beyond burst. *)
  checkb "t=100 1" true (Token_bucket.allow b ~now:100.);
  checkb "t=100 2" true (Token_bucket.allow b ~now:100.);
  checkb "t=100 3 denied" false (Token_bucket.allow b ~now:100.)

let test_bucket_cost () =
  let b = Token_bucket.create ~rate:1.0 ~burst:10.0 in
  checkb "cost 8" true (Token_bucket.allow ~cost:8. b ~now:0.);
  checkb "cost 3 denied" false (Token_bucket.allow ~cost:3. b ~now:0.);
  checkb "peek" true (Token_bucket.peek_tokens b ~now:0. = 2.)

let test_bucket_long_run_rate () =
  (* Admitted count over a long horizon approximates rate * time. *)
  let b = Token_bucket.create ~rate:5.0 ~burst:5.0 in
  let admitted = ref 0 in
  for ms = 0 to 100_000 do
    let now = float_of_int ms /. 100. in
    if Token_bucket.allow b ~now then incr admitted
  done;
  (* 1000 s at 5/s = ~5000 (+burst). *)
  checkb "within 1%" true (abs (!admitted - 5005) < 50)

let test_bucket_validation () =
  checkb "bad rate" true
    (try
       ignore (Token_bucket.create ~rate:0. ~burst:1.);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "aitf_filter"
    [
      ( "flow_label",
        [
          Alcotest.test_case "host pair" `Quick test_label_host_pair_match;
          Alcotest.test_case "header src" `Quick test_label_matches_header_src;
          Alcotest.test_case "net/any" `Quick test_label_net_and_any;
          Alcotest.test_case "proto" `Quick test_label_proto;
          Alcotest.test_case "ports" `Quick test_label_ports;
          Alcotest.test_case "of_string" `Quick test_label_of_string;
          Alcotest.test_case "subsumes" `Quick test_label_subsumes;
          Alcotest.test_case "equal/compare" `Quick test_label_equal_compare;
          Alcotest.test_case "is_exact" `Quick test_label_is_exact;
          QCheck_alcotest.to_alcotest subsumption_implies_match;
          QCheck_alcotest.to_alcotest subsumes_reflexive_transitive;
          QCheck_alcotest.to_alcotest subsumes_antisymmetric;
          QCheck_alcotest.to_alcotest to_string_roundtrip;
          QCheck_alcotest.to_alcotest compare_total_order;
        ] );
      ( "filter_table",
        [
          Alcotest.test_case "install/block" `Quick test_table_install_and_block;
          Alcotest.test_case "expiry" `Quick test_table_expiry;
          Alcotest.test_case "capacity" `Quick test_table_capacity;
          Alcotest.test_case "refresh" `Quick test_table_refresh_same_label;
          Alcotest.test_case "remove" `Quick test_table_remove;
          Alcotest.test_case "slot reuse" `Quick
            test_table_slot_reusable_after_expiry;
          Alcotest.test_case "wildcards" `Quick test_table_wildcard_entries;
          Alcotest.test_case "would_block" `Quick
            test_table_would_block_no_stats;
          Alcotest.test_case "hit tracking" `Quick test_table_hit_tracking;
          Alcotest.test_case "find" `Quick test_table_find;
          Alcotest.test_case "proto probe" `Quick test_table_proto_probe;
          Alcotest.test_case "evict subsumed" `Quick test_table_evict_subsumed;
          Alcotest.test_case "evict subsumed none" `Quick
            test_table_evict_subsumed_none;
          Alcotest.test_case "rate-limited entry" `Quick
            test_table_rate_limited_entry;
          Alcotest.test_case "block entry" `Quick
            test_table_block_entry_blocks_everything;
          Alcotest.test_case "install evicts subsumed" `Quick
            test_table_install_evicts_subsumed;
          Alcotest.test_case "install full, nothing subsumed" `Quick
            test_table_install_full_no_subsumed;
          Alcotest.test_case "wildcard most-specific-first" `Quick
            test_table_wildcard_most_specific_first;
          Alcotest.test_case "wildcard tie deterministic" `Quick
            test_table_wildcard_tie_deterministic;
          Alcotest.test_case "refresh applies rate limit" `Quick
            test_table_refresh_applies_rate_limit;
          Alcotest.test_case "mixed accounting" `Quick
            test_table_accounting_mixed;
          QCheck_alcotest.to_alcotest table_soundness;
        ] );
      ( "overload",
        [
          Alcotest.test_case "transparent below watermark" `Quick
            test_overload_transparent_below_watermark;
          Alcotest.test_case "degraded is a pure read" `Quick
            test_overload_degraded_is_pure_read;
          Alcotest.test_case "aggregates under pressure" `Quick
            test_overload_aggregates_under_pressure;
          Alcotest.test_case "priority eviction" `Quick
            test_overload_priority_eviction;
          Alcotest.test_case "requestor cap" `Quick test_overload_requestor_cap;
          Alcotest.test_case "collateral accounting" `Quick
            test_overload_collateral_accounting;
          Alcotest.test_case "policy validation" `Quick
            test_overload_policy_validation;
        ] );
      ( "shadow_cache",
        [
          Alcotest.test_case "insert/find" `Quick test_shadow_insert_find;
          Alcotest.test_case "match packet" `Quick test_shadow_match_packet;
          Alcotest.test_case "ttl" `Quick test_shadow_ttl;
          Alcotest.test_case "refresh" `Quick test_shadow_refresh;
          Alcotest.test_case "capacity" `Quick test_shadow_capacity;
          Alcotest.test_case "reinsert" `Quick test_shadow_reinsert_replaces;
          Alcotest.test_case "remove/iter" `Quick test_shadow_remove_and_iter;
        ] );
      ( "token_bucket",
        [
          Alcotest.test_case "burst then deny" `Quick
            test_bucket_burst_then_deny;
          Alcotest.test_case "refill" `Quick test_bucket_refill;
          Alcotest.test_case "burst cap" `Quick test_bucket_burst_cap;
          Alcotest.test_case "cost" `Quick test_bucket_cost;
          Alcotest.test_case "long-run rate" `Quick test_bucket_long_run_rate;
          Alcotest.test_case "validation" `Quick test_bucket_validation;
        ] );
    ]
