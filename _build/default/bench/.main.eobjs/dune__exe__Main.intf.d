bench/main.mli:
