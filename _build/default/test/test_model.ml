(* Tests for aitf_model: the paper's Section IV formulas, pinned to the
   worked examples given in the text. *)

module F = Aitf_model.Formulas

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

let close ?(tol = 1e-9) a b = Float.abs (a -. b) < tol

(* Paper IV-A.1: "if the only non-cooperating node on the attack path is the
   attacker, and if the one-way delay from the victim to its gateway is
   Tr = 50 msec, for T = 1 min, ... r ~= 0.00083". *)
let test_r_paper_example () =
  let r = F.effective_bandwidth_ratio ~n:1 ~td:0. ~tr:0.05 ~t_filter:60. in
  checkb "r ~= 0.00083" true (close ~tol:5e-6 r 0.000833333)

let test_r_scales_linearly_with_n () =
  let r1 = F.effective_bandwidth_ratio ~n:1 ~td:0.1 ~tr:0.05 ~t_filter:60. in
  let r3 = F.effective_bandwidth_ratio ~n:3 ~td:0.1 ~tr:0.05 ~t_filter:60. in
  checkb "3x" true (close (3. *. r1) r3)

let test_r_inverse_in_t () =
  let r60 = F.effective_bandwidth_ratio ~n:1 ~td:0.1 ~tr:0.05 ~t_filter:60. in
  let r120 = F.effective_bandwidth_ratio ~n:1 ~td:0.1 ~tr:0.05 ~t_filter:120. in
  checkb "halves" true (close (r60 /. 2.) r120)

let test_effective_bandwidth () =
  let be =
    F.effective_bandwidth ~n:1 ~td:0. ~tr:0.05 ~t_filter:60. ~bandwidth:10e6
  in
  checkb "Be = B * r" true (close ~tol:1. be (10e6 *. 0.05 /. 60.))

(* Paper IV-A.2: "for R1 = 100 filtering requests per second and T = 1 min,
   the client is protected against Nv = 6,000 simultaneous undesired
   flows". *)
let test_nv_paper_example () =
  checki "Nv = 6000" 6000 (F.protected_flows ~r1:100. ~t_filter:60.)

(* Paper IV-B: "if the 3-way handshake ... takes 600 msec, for R1 = 100 ...
   the provider needs nv = 60 filters", and "mv = R1 * T". *)
let test_nv_filters_paper_example () =
  checki "nv = 60" 60 (F.victim_gateway_filters ~r1:100. ~t_tmp:0.6);
  checki "mv = 6000" 6000 (F.victim_gateway_shadow ~r1:100. ~t_filter:60.)

(* Paper IV-C/IV-D: "for R2 = 1 filtering request per second and T = 1 min,
   the provider needs na = 60 filters" (and the client the same). *)
let test_na_paper_example () =
  checki "na = 60" 60 (F.attacker_gateway_filters ~r2:1. ~t_filter:60.)

let test_nv_much_less_than_shadow () =
  (* The whole point of the design: nv = R1*Ttmp << mv = R1*T. *)
  let nv = F.victim_gateway_filters ~r1:100. ~t_tmp:0.6 in
  let mv = F.victim_gateway_shadow ~r1:100. ~t_filter:60. in
  checkb "nv << mv" true (nv * 10 <= mv)

let test_min_t_tmp () =
  checkb "sum" true (close (F.min_t_tmp ~traceback_time:0.2 ~handshake_time:0.6) 0.8);
  (* With in-packet route record traceback is free. *)
  checkb "route record" true
    (close (F.min_t_tmp ~traceback_time:0. ~handshake_time:0.6) 0.6)

let test_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "T=0 rejected" true
    (raises (fun () -> F.effective_bandwidth_ratio ~n:1 ~td:0. ~tr:0. ~t_filter:0.));
  checkb "R1<=0 rejected" true
    (raises (fun () -> F.protected_flows ~r1:0. ~t_filter:60.));
  checkb "Ttmp<=0 rejected" true
    (raises (fun () -> F.victim_gateway_filters ~r1:1. ~t_tmp:0.));
  checkb "R2<=0 rejected" true
    (raises (fun () -> F.attacker_gateway_filters ~r2:(-1.) ~t_filter:60.))

let nv_monotone =
  QCheck.Test.make ~name:"Nv monotone in R1 and T" ~count:200
    QCheck.(pair (float_range 1. 1000.) (float_range 1. 600.))
    (fun (r1, t) ->
      F.protected_flows ~r1 ~t_filter:t
      <= F.protected_flows ~r1:(r1 +. 1.) ~t_filter:(t +. 1.))

let () =
  Alcotest.run "aitf_model"
    [
      ( "formulas",
        [
          Alcotest.test_case "r paper example" `Quick test_r_paper_example;
          Alcotest.test_case "r linear in n" `Quick test_r_scales_linearly_with_n;
          Alcotest.test_case "r inverse in T" `Quick test_r_inverse_in_t;
          Alcotest.test_case "effective bandwidth" `Quick
            test_effective_bandwidth;
          Alcotest.test_case "Nv paper example" `Quick test_nv_paper_example;
          Alcotest.test_case "nv/mv paper example" `Quick
            test_nv_filters_paper_example;
          Alcotest.test_case "na paper example" `Quick test_na_paper_example;
          Alcotest.test_case "nv << mv" `Quick test_nv_much_less_than_shadow;
          Alcotest.test_case "min Ttmp" `Quick test_min_t_tmp;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest nv_monotone;
        ] );
    ]
