(* Tests for aitf_dpf: route-based (reverse-path) packet filtering. *)

module Sim = Aitf_engine.Sim
open Aitf_net
module Dpf = Aitf_dpf.Dpf

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

(*   h1 - r1 - r2 - h2
          |
          h3            a side branch so strict RPF has something to check *)
let rig () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let h1 = Network.add_node net ~name:"h1" ~addr:(addr "1.0.0.10") ~as_id:1 Node.Host in
  let h2 = Network.add_node net ~name:"h2" ~addr:(addr "2.0.0.10") ~as_id:2 Node.Host in
  let h3 = Network.add_node net ~name:"h3" ~addr:(addr "3.0.0.10") ~as_id:3 Node.Host in
  let r1 = Network.add_node net ~name:"r1" ~addr:(addr "1.0.0.1") ~as_id:4 Node.Border_router in
  let r2 = Network.add_node net ~name:"r2" ~addr:(addr "2.0.0.1") ~as_id:5 Node.Border_router in
  ignore (Network.connect net h1 r1 ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net h3 r1 ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net r1 r2 ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net r2 h2 ~bandwidth:1e9 ~delay:0.001);
  Network.compute_routes net;
  (sim, net, h1, h2, h3, r1, r2)

let send net src ~spoof ~dst =
  Network.originate net src
    (Packet.make
       ?spoofed_src:spoof
       ~src:src.Node.addr ~dst:dst.Node.addr ~size:100
       (Packet.Data { flow_id = 0; attack = true }))

let test_genuine_passes () =
  let sim, net, h1, h2, _, r1, _ = rig () in
  let d = Dpf.install net r1 in
  let got = ref 0 in
  h2.Node.local_deliver <- (fun _ _ -> incr got);
  send net h1 ~spoof:None ~dst:h2;
  Sim.run sim;
  checki "delivered" 1 !got;
  checki "checked" 1 (Dpf.checked d);
  checki "no drops" 0 (Dpf.dropped d)

let test_strict_drops_onpath_spoof () =
  (* h1 claims to be h3: r1 routes to h3 via the h3 port, but the packet
     came from h1 — strict RPF must kill it. *)
  let sim, net, h1, h2, h3, r1, _ = rig () in
  let d = Dpf.install net r1 in
  let got = ref 0 in
  h2.Node.local_deliver <- (fun _ _ -> incr got);
  send net h1 ~spoof:(Some h3.Node.addr) ~dst:h2;
  Sim.run sim;
  checki "not delivered" 0 !got;
  checki "dropped" 1 (Dpf.dropped d);
  checki "accounted on node" 1 (Node.drop_count r1 "dpf-spoof")

let test_bogon_dropped_in_both_modes () =
  let run mode =
    let sim, net, h1, h2, _, r1, _ = rig () in
    let d = Dpf.install ~mode net r1 in
    let got = ref 0 in
    h2.Node.local_deliver <- (fun _ _ -> incr got);
    send net h1 ~spoof:(Some (addr "99.9.9.9")) ~dst:h2;
    Sim.run sim;
    (!got, Dpf.dropped d)
  in
  let got_strict, dropped_strict = run Dpf.Strict in
  let got_loose, dropped_loose = run Dpf.Loose in
  checki "strict blocks bogon" 0 got_strict;
  checki "loose blocks bogon" 0 got_loose;
  checkb "both count" true (dropped_strict = 1 && dropped_loose = 1)

let test_loose_passes_routable_spoof () =
  let sim, net, h1, h2, h3, r1, _ = rig () in
  let d = Dpf.install ~mode:Dpf.Loose net r1 in
  let got = ref 0 in
  h2.Node.local_deliver <- (fun _ _ -> incr got);
  send net h1 ~spoof:(Some h3.Node.addr) ~dst:h2;
  Sim.run sim;
  checki "loose lets routable spoof pass" 1 !got;
  checki "no drop" 0 (Dpf.dropped d)

let test_downstream_router_agrees () =
  (* The spoof that fools r1 direction-wise is still caught at r2: traffic
     "from h3" must arrive at r2 via r1 — it does, so r2 passes it; this
     pins the semantics (DPF placement matters). *)
  let sim, net, h1, h2, h3, _, r2 = rig () in
  let d2 = Dpf.install net r2 in
  let got = ref 0 in
  h2.Node.local_deliver <- (fun _ _ -> incr got);
  send net h1 ~spoof:(Some h3.Node.addr) ~dst:h2;
  Sim.run sim;
  checki "r2 cannot tell" 1 !got;
  checki "r2 saw it" 1 (Dpf.checked d2)

let test_deploy_many () =
  let sim, net, h1, h2, h3, r1, r2 = rig () in
  let ds = Dpf.deploy net [ r1; r2 ] in
  checki "two installed" 2 (List.length ds);
  let got = ref 0 in
  h2.Node.local_deliver <- (fun _ _ -> incr got);
  send net h1 ~spoof:(Some h3.Node.addr) ~dst:h2;
  send net h1 ~spoof:None ~dst:h2;
  Sim.run sim;
  checki "only genuine arrives" 1 !got

let () =
  Alcotest.run "aitf_dpf"
    [
      ( "dpf",
        [
          Alcotest.test_case "genuine passes" `Quick test_genuine_passes;
          Alcotest.test_case "strict drops spoof" `Quick
            test_strict_drops_onpath_spoof;
          Alcotest.test_case "bogon both modes" `Quick
            test_bogon_dropped_in_both_modes;
          Alcotest.test_case "loose passes routable" `Quick
            test_loose_passes_routable_spoof;
          Alcotest.test_case "downstream semantics" `Quick
            test_downstream_router_agrees;
          Alcotest.test_case "deploy many" `Quick test_deploy_many;
        ] );
    ]
