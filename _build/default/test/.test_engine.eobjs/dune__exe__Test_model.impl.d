test/test_model.ml: Aitf_model Alcotest Float QCheck QCheck_alcotest
