test/test_stats.ml: Aitf_stats Alcotest Array Float List String
