test/test_traceback.ml: Addr Aitf_engine Aitf_net Aitf_traceback Alcotest Array Bloom List Network Node Option Packet Ppm Printf QCheck QCheck_alcotest Route_record Spie String
