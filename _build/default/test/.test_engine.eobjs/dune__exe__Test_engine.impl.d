test/test_engine.ml: Aitf_engine Alcotest Array Float Fun Int List Option QCheck QCheck_alcotest
