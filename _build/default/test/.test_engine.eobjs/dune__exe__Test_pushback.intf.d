test/test_pushback.mli:
