test/test_net.ml: Addr Aitf_engine Aitf_net Alcotest Int32 Link List Lpm Network Node Option Packet QCheck QCheck_alcotest Tap
