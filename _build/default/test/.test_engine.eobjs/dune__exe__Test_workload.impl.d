test/test_workload.ml: Addr Aitf_core Aitf_engine Aitf_filter Aitf_net Aitf_stats Aitf_topo Aitf_workload Alcotest Config Int Link List Message Network Node Packet String
