test/test_pushback.ml: Addr Aitf_engine Aitf_net Aitf_pushback Aitf_workload Alcotest Network Node
