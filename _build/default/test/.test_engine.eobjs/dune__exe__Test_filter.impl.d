test/test_filter.ml: Addr Aitf_engine Aitf_filter Aitf_net Alcotest Filter_table Flow_label Int32 List Option Packet QCheck QCheck_alcotest Shadow_cache Token_bucket
