test/test_traceback.mli:
