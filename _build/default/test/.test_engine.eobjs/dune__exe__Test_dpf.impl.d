test/test_dpf.ml: Addr Aitf_dpf Aitf_engine Aitf_net Alcotest List Network Node Packet
