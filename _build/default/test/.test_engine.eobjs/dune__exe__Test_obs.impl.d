test/test_obs.ml: Aitf_core Aitf_engine Aitf_obs Aitf_stats Aitf_workload Alcotest Float Fun List Option Result
