(* Tests for aitf_stats: counters, rate meters, series, summaries, tables. *)

module Counter = Aitf_stats.Counter
module Rate_meter = Aitf_stats.Rate_meter
module Series = Aitf_stats.Series
module Summary = Aitf_stats.Summary
module Table = Aitf_stats.Table

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf = check (Alcotest.float 1e-9)

(* --- Counter -------------------------------------------------------------- *)

let test_counter_basics () =
  let c = Counter.create () in
  checki "absent is zero" 0 (Counter.get c "x");
  Counter.incr c "x";
  Counter.incr c "x";
  Counter.incr ~by:5 c "y";
  checki "x" 2 (Counter.get c "x");
  checki "y" 5 (Counter.get c "y");
  Counter.set c "y" 1;
  checki "set" 1 (Counter.get c "y")

let test_counter_to_list_sorted () =
  let c = Counter.create () in
  Counter.incr c "zeta";
  Counter.incr c "alpha";
  Counter.incr c "mid";
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted"
    [ ("alpha", 1); ("mid", 1); ("zeta", 1) ]
    (Counter.to_list c)

let test_counter_reset () =
  let c = Counter.create () in
  Counter.incr c "x";
  Counter.reset c;
  checki "cleared" 0 (Counter.get c "x");
  checki "empty list" 0 (List.length (Counter.to_list c))

(* --- Rate meter ------------------------------------------------------------ *)

let test_meter_windowed_rate () =
  let m = Rate_meter.create ~window:1.0 in
  Rate_meter.add m ~now:0.1 100.;
  Rate_meter.add m ~now:0.5 100.;
  checkf "both in window" 200. (Rate_meter.rate m ~now:0.9);
  (* At t=1.2 the first sample (t=0.1) ages out. *)
  checkf "first expired" 100. (Rate_meter.rate m ~now:1.2);
  checkf "all expired" 0. (Rate_meter.rate m ~now:5.0)

let test_meter_totals () =
  let m = Rate_meter.create ~window:0.5 in
  Rate_meter.add m ~now:0.0 10.;
  Rate_meter.add m ~now:10.0 30.;
  checkf "total survives window" 40. (Rate_meter.total m);
  checkf "mean rate" 4. (Rate_meter.mean_rate m ~now:10.0);
  checkf "mean rate at t=0" 0. (Rate_meter.mean_rate (Rate_meter.create ~window:1.) ~now:0.)

let test_meter_validation () =
  checkb "bad window" true
    (try
       ignore (Rate_meter.create ~window:0.);
       false
     with Invalid_argument _ -> true)

(* --- Series ----------------------------------------------------------------- *)

let test_series_points_in_order () =
  let s = Series.create ~name:"s" () in
  Series.add s ~time:1.0 10.;
  Series.add s ~time:2.0 20.;
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.) (Alcotest.float 0.)))
    "points" [ (1.0, 10.); (2.0, 20.) ] (Series.points s);
  checki "length" 2 (Series.length s);
  checkb "last" true (Series.last s = Some (2.0, 20.));
  checks "name" "s" (Series.name s)

let test_series_rejects_backwards_time () =
  let s = Series.create () in
  Series.add s ~time:5.0 1.;
  checkb "raises" true
    (try
       Series.add s ~time:4.0 1.;
       false
     with Invalid_argument _ -> true)

let test_series_resample_hold () =
  let s = Series.create () in
  Series.add s ~time:0.5 10.;
  Series.add s ~time:2.1 20.;
  let r = Series.resample s ~step:1.0 ~until:4.0 in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "sample and hold"
    [ (0., 0.); (1., 10.); (2., 10.); (3., 20.); (4., 20.) ]
    r

let test_series_stats () =
  let s = Series.create () in
  List.iter (fun (t, v) -> Series.add s ~time:t v) [ (0., 1.); (1., 5.); (2., 3.) ];
  checkf "max" 5. (Series.max_value s);
  checkf "mean" 3. (Series.mean_value s);
  checkf "empty max" 0. (Series.max_value (Series.create ()))

(* --- Summary ----------------------------------------------------------------- *)

let test_summary_basic () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  checki "n" 5 s.Summary.n;
  checkf "mean" 3. s.Summary.mean;
  checkf "min" 1. s.Summary.min;
  checkf "max" 5. s.Summary.max;
  checkf "median" 3. s.Summary.p50

let test_summary_empty () =
  let s = Summary.of_list [] in
  checki "n" 0 s.Summary.n;
  checkf "mean" 0. s.Summary.mean

let test_summary_percentiles () =
  let sorted = Array.init 100 (fun i -> float_of_int (i + 1)) in
  checkf "p50" 50. (Summary.percentile sorted 0.5);
  checkf "p90" 90. (Summary.percentile sorted 0.9);
  checkf "p99" 99. (Summary.percentile sorted 0.99);
  checkf "p100" 100. (Summary.percentile sorted 1.0);
  checkb "empty raises" true
    (try
       ignore (Summary.percentile [||] 0.5);
       false
     with Invalid_argument _ -> true);
  checkb "q out of range" true
    (try
       ignore (Summary.percentile sorted 1.5);
       false
     with Invalid_argument _ -> true)

let test_summary_stddev () =
  let s = Summary.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  checkb "stddev = 2" true (Float.abs (s.Summary.stddev -. 2.) < 1e-9)

(* --- Histogram ---------------------------------------------------------------- *)

module Histogram = Aitf_stats.Histogram

let test_histogram_bucketing () =
  let h = Histogram.create ~bounds:[ 1.; 10.; 100. ] in
  List.iter (Histogram.add h) [ 0.5; 1.0; 5.; 50.; 500. ];
  checki "total" 5 (Histogram.count h);
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.) Alcotest.int))
    "buckets"
    [ (1., 2.0 |> int_of_float |> fun _ -> 2); (10., 1); (100., 1);
      (infinity, 1) ]
    (Histogram.buckets h)

let test_histogram_validation () =
  checkb "empty rejected" true
    (try ignore (Histogram.create ~bounds:[]); false
     with Invalid_argument _ -> true);
  checkb "unsorted rejected" true
    (try ignore (Histogram.create ~bounds:[ 2.; 1. ]); false
     with Invalid_argument _ -> true)

let test_histogram_log_bounds () =
  let b = Histogram.log_bounds ~lo:0.001 ~hi:1.0 ~per_decade:1 in
  checki "one per decade spans 3 decades + endpoint" 4 (List.length b);
  checkb "ascending" true (List.sort Float.compare b = b)

let test_histogram_render () =
  let h = Histogram.create ~bounds:[ 1.; 10. ] in
  List.iter (Histogram.add h) [ 0.5; 0.6; 5. ];
  let s = Histogram.render ~width:10 h in
  checkb "mentions buckets" true
    (String.length s > 0
    && List.length (String.split_on_char '\n' s) >= 2)

(* --- Table ----------------------------------------------------------------- *)

let test_table_render_alignment () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22222" ];
  let s = Table.render t in
  checkb "has title" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "== demo ==") lines);
  (* Every data line must have the same width. *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '|')
    |> List.map String.length
  in
  checkb "aligned" true
    (match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest)

let test_table_bad_row () =
  let t = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  checkb "wrong arity rejected" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let test_table_rowf () =
  let t = Table.create ~title:"x" ~columns:[ "a"; "b"; "c" ] in
  Table.add_rowf t "%d|%s|%.2f" 1 "two" 3.0;
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "split on pipes"
    [ [ "1"; "two"; "3.00" ] ]
    (Table.rows t)

let test_table_csv () =
  let t = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "plain"; "with,comma" ];
  Table.add_row t [ "with\"quote"; "ok" ];
  checks "csv quoting" "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",ok\n"
    (Table.to_csv t)

let test_table_cells () =
  checks "float" "3.142" (Table.cell_float ~digits:4 3.14159);
  checks "int" "42" (Table.cell_int 42);
  checks "bool" "yes" (Table.cell_bool true);
  checks "ratio" "1/4 (25.0%)" (Table.cell_ratio 1. 4.);
  checks "ratio div0" "1/0" (Table.cell_ratio 1. 0.)

let () =
  Alcotest.run "aitf_stats"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "sorted list" `Quick test_counter_to_list_sorted;
          Alcotest.test_case "reset" `Quick test_counter_reset;
        ] );
      ( "rate_meter",
        [
          Alcotest.test_case "windowed rate" `Quick test_meter_windowed_rate;
          Alcotest.test_case "totals" `Quick test_meter_totals;
          Alcotest.test_case "validation" `Quick test_meter_validation;
        ] );
      ( "series",
        [
          Alcotest.test_case "points order" `Quick test_series_points_in_order;
          Alcotest.test_case "time monotone" `Quick
            test_series_rejects_backwards_time;
          Alcotest.test_case "resample" `Quick test_series_resample_hold;
          Alcotest.test_case "stats" `Quick test_series_stats;
        ] );
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
          Alcotest.test_case "stddev" `Quick test_summary_stddev;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          Alcotest.test_case "log bounds" `Quick test_histogram_log_bounds;
          Alcotest.test_case "render" `Quick test_histogram_render;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render_alignment;
          Alcotest.test_case "bad row" `Quick test_table_bad_row;
          Alcotest.test_case "rowf" `Quick test_table_rowf;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
