(* Tests for aitf_pushback: congestion detection, aggregate rate limiting
   and hop-by-hop upstream propagation. *)

module Sim = Aitf_engine.Sim
open Aitf_net
module Pushback = Aitf_pushback.Pushback

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

(* Topology:  s1, s2 -- r1 -- r0 -- victim(thin tail)
   Both sources flood the victim; r0's tail link congests. *)
type rig = {
  sim : Sim.t;
  net : Network.t;
  victim : Node.t;
  r0 : Node.t;
  r1 : Node.t;
  s1 : Node.t;
  s2 : Node.t;
}

let build () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let victim =
    Network.add_node net ~name:"victim" ~addr:(addr "10.0.0.10") ~as_id:1 Node.Host
  in
  let r0 =
    Network.add_node net ~name:"r0" ~addr:(addr "10.0.0.1") ~as_id:1 Node.Router
  in
  let r1 =
    Network.add_node net ~name:"r1" ~addr:(addr "10.1.0.1") ~as_id:2 Node.Router
  in
  let s1 =
    Network.add_node net ~name:"s1" ~addr:(addr "20.0.0.1") ~as_id:3 Node.Host
  in
  let s2 =
    Network.add_node net ~name:"s2" ~addr:(addr "20.0.0.2") ~as_id:4 Node.Host
  in
  (* Thin 1 Mbit/s tail; fat upstream links. *)
  ignore (Network.connect net r0 victim ~bandwidth:1e6 ~delay:0.005 ~queue_capacity:16000);
  ignore (Network.connect net r1 r0 ~bandwidth:1e8 ~delay:0.005);
  ignore (Network.connect net s1 r1 ~bandwidth:1e8 ~delay:0.005);
  ignore (Network.connect net s2 r1 ~bandwidth:1e8 ~delay:0.005);
  Network.compute_routes net;
  { sim; net; victim; r0; r1; s1; s2 }

let flood r node ~rate ~flow_id =
  ignore
    (Aitf_workload.Traffic.cbr ~start:0.1 ~attack:true ~flow_id ~rate
       ~dst:r.victim.Node.addr r.net node)

let test_congestion_triggers_limiter () =
  let r = build () in
  let pb = Pushback.deploy r.net [ r.r0; r.r1 ] in
  flood r r.s1 ~rate:2e6 ~flow_id:1;
  flood r r.s2 ~rate:2e6 ~flow_id:2;
  Sim.run ~until:2.0 r.sim;
  checkb "limiter installed" true (Pushback.limiters_installed pb >= 1);
  checkb "some router limiting" true (Pushback.routers_limiting pb >= 1);
  checkb "limited bytes counted" true (Pushback.limited_bytes pb > 0.)

let test_propagates_upstream () =
  let r = build () in
  let pb = Pushback.deploy r.net [ r.r0; r.r1 ] in
  flood r r.s1 ~rate:4e6 ~flow_id:1;
  flood r r.s2 ~rate:4e6 ~flow_id:2;
  Sim.run ~until:6.0 r.sim;
  (* r0 limits first, stays over the limit (sources unabated), then pushes
     back to r1 which installs its own limiter. *)
  checkb "pushback message sent" true (Pushback.messages_sent pb >= 1);
  checkb "both routers limiting" true (Pushback.routers_limiting pb >= 2)

let test_rate_actually_limited () =
  let r = build () in
  let (_ : Pushback.t) = Pushback.deploy r.net [ r.r0; r.r1 ] in
  let received = ref 0 in
  r.victim.Node.local_deliver <- (fun _ _ -> incr received);
  flood r r.s1 ~rate:8e6 ~flow_id:1;
  Sim.run ~until:10.0 r.sim;
  (* Unlimited, ~10 Mb would offer 1000+ packets through a 1 Mb/s tail
     (~125 pkt/s); with pushback limiting to ~30% of the congested link the
     delivered count must come out well below the tail's own capacity. *)
  let tail_capacity_packets = int_of_float (10.0 *. 1e6 /. 8. /. 1000.) in
  checkb "delivered below tail capacity" true (!received < tail_capacity_packets);
  checkb "still some traffic" true (!received > 0)

let test_no_congestion_no_limiter () =
  let r = build () in
  let pb = Pushback.deploy r.net [ r.r0; r.r1 ] in
  flood r r.s1 ~rate:2e5 ~flow_id:1 (* well under the 1 Mb/s tail *);
  Sim.run ~until:3.0 r.sim;
  checki "no limiters" 0 (Pushback.limiters_installed pb)

let test_limiter_expires () =
  let r = build () in
  let config = { Pushback.default_config with Pushback.limiter_timeout = 2.0 } in
  let pb = Pushback.deploy ~config r.net [ r.r0; r.r1 ] in
  (* Flood briefly, then stop; limiters must age out. *)
  ignore
    (Aitf_workload.Traffic.cbr ~start:0.1 ~stop:1.5 ~attack:true ~flow_id:1
       ~rate:4e6 ~dst:r.victim.Node.addr r.net r.s1);
  Sim.run ~until:8.0 r.sim;
  checkb "was limiting" true (Pushback.limiters_installed pb >= 1);
  checki "no active limiters left" 0 (Pushback.active_limiters pb)

let test_default_config_sane () =
  let c = Pushback.default_config in
  checkb "threshold in (0,1)" true
    (c.Pushback.drop_threshold > 0. && c.Pushback.drop_threshold < 1.);
  checkb "limit fraction in (0,1)" true
    (c.Pushback.limit_fraction > 0. && c.Pushback.limit_fraction < 1.);
  checkb "depth positive" true (c.Pushback.max_depth > 0)

let () =
  Alcotest.run "aitf_pushback"
    [
      ( "pushback",
        [
          Alcotest.test_case "congestion triggers limiter" `Quick
            test_congestion_triggers_limiter;
          Alcotest.test_case "propagates upstream" `Quick
            test_propagates_upstream;
          Alcotest.test_case "rate limited" `Quick test_rate_actually_limited;
          Alcotest.test_case "no congestion no limiter" `Quick
            test_no_congestion_no_limiter;
          Alcotest.test_case "limiter expires" `Quick test_limiter_expires;
          Alcotest.test_case "default config" `Quick test_default_config_sane;
        ] );
    ]
