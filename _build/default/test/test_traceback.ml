(* Tests for aitf_traceback: route record, bloom filters, SPIE and PPM. *)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_traceback

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let addr = Addr.of_string

let data ~src ~dst =
  Packet.make ~src ~dst ~size:1000 (Packet.Data { flow_id = 0; attack = true })

(* --- Route record --------------------------------------------------------- *)

let test_rr_hook_stamps () =
  let node =
    Node.make ~id:0 ~name:"gw" ~addr:(addr "5.0.0.1") ~as_id:1
      Node.Border_router
  in
  let pkt = data ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") in
  (match Route_record.hook node pkt with
  | Node.Continue -> ()
  | Node.Drop _ -> Alcotest.fail "hook must not drop");
  check (Alcotest.list Alcotest.string) "stamped" [ "5.0.0.1" ]
    (List.map Addr.to_string (Route_record.path pkt))

let test_rr_round_indexing () =
  let path = [ addr "1.1.1.1"; addr "2.2.2.2"; addr "3.3.3.3" ] in
  checkb "round 0 = nearest attacker" true
    (Route_record.gateway_for_round path ~round:0 = Some (addr "1.1.1.1"));
  checkb "round 2" true
    (Route_record.gateway_for_round path ~round:2 = Some (addr "3.3.3.3"));
  checkb "past end" true (Route_record.gateway_for_round path ~round:3 = None)

(* A 4-gateway chain: packets from h1 to h2 must arrive carrying the border
   routers in traversal (attacker-first) order. *)
let test_rr_end_to_end_order () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let h1 = Network.add_node net ~name:"h1" ~addr:(addr "1.0.0.10") ~as_id:1 Node.Host in
  let h2 = Network.add_node net ~name:"h2" ~addr:(addr "2.0.0.10") ~as_id:9 Node.Host in
  let gws =
    List.init 4 (fun i ->
        let gw =
          Network.add_node net
            ~name:(Printf.sprintf "gw%d" i)
            ~addr:(Addr.of_octets 5 i 0 1)
            ~as_id:(2 + i) Node.Border_router
        in
        Route_record.install gw;
        gw)
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
      ignore (Network.connect net a b ~bandwidth:1e9 ~delay:0.001);
      chain rest
    | _ -> ()
  in
  chain ([ h1 ] @ gws @ [ h2 ]);
  Network.compute_routes net;
  let got = ref [] in
  h2.Node.local_deliver <- (fun _ pkt -> got := Route_record.path pkt);
  Network.originate net h1 (data ~src:h1.Node.addr ~dst:h2.Node.addr);
  Sim.run sim;
  check (Alcotest.list Alcotest.string) "traversal order"
    [ "5.0.0.1"; "5.1.0.1"; "5.2.0.1"; "5.3.0.1" ]
    (List.map Addr.to_string !got)

(* --- Bloom ---------------------------------------------------------------- *)

let test_bloom_membership () =
  let b = Bloom.create ~bits:1024 ~hashes:4 in
  Bloom.add b "hello";
  checkb "present" true (Bloom.mem b "hello");
  checki "inserted" 1 (Bloom.inserted b)

let test_bloom_clear () =
  let b = Bloom.create ~bits:1024 ~hashes:4 in
  Bloom.add b "x";
  Bloom.clear b;
  checkb "cleared" false (Bloom.mem b "x");
  checki "count reset" 0 (Bloom.inserted b);
  checkb "fill ratio zero" true (Bloom.fill_ratio b = 0.)

let test_bloom_fp_rate_reasonable () =
  let b = Bloom.create ~bits:(1 lsl 14) ~hashes:4 in
  for i = 0 to 999 do
    Bloom.add b (string_of_int i)
  done;
  let fps = ref 0 in
  for i = 1000 to 10_999 do
    if Bloom.mem b (string_of_int i) then incr fps
  done;
  let rate = float_of_int !fps /. 10_000. in
  (* Theoretical rate at this load is ~2.4%; allow generous slack. *)
  checkb "fp rate below 6%" true (rate < 0.06);
  checkb "theoretical fp sane" true (Bloom.theoretical_fp_rate b < 0.06)

let test_bloom_validation () =
  checkb "bad bits" true
    (try
       ignore (Bloom.create ~bits:0 ~hashes:1);
       false
     with Invalid_argument _ -> true)

let bloom_no_false_negatives =
  QCheck.Test.make ~name:"bloom has no false negatives" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 200) string)
    (fun keys ->
      let b = Bloom.create ~bits:4096 ~hashes:3 in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

(* --- SPIE ----------------------------------------------------------------- *)

(* h1 - gw0 - gw1 - gw2 - h2 with SPIE deployed on the border routers. *)
let spie_chain () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let h1 = Network.add_node net ~name:"h1" ~addr:(addr "1.0.0.10") ~as_id:1 Node.Host in
  let h2 = Network.add_node net ~name:"h2" ~addr:(addr "2.0.0.10") ~as_id:9 Node.Host in
  let gws =
    Array.init 3 (fun i ->
        Network.add_node net
          ~name:(Printf.sprintf "gw%d" i)
          ~addr:(Addr.of_octets 5 i 0 1)
          ~as_id:(2 + i) Node.Border_router)
  in
  ignore (Network.connect net h1 gws.(0) ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net gws.(0) gws.(1) ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net gws.(1) gws.(2) ~bandwidth:1e9 ~delay:0.001);
  ignore (Network.connect net gws.(2) h2 ~bandwidth:1e9 ~delay:0.001);
  let spie = Spie.deploy net in
  Network.compute_routes net;
  (sim, net, h1, h2, gws, spie)

let test_spie_digest_excludes_mutables () =
  let p = data ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") in
  let d1 = Spie.digest p in
  p.Packet.ttl <- p.Packet.ttl - 3;
  Packet.record_route p (addr "9.9.9.9");
  p.Packet.ppm_mark <- Some (addr "9.9.9.9", addr "8.8.8.8", 2);
  checkb "digest stable under mutation" true (String.equal d1 (Spie.digest p))

let test_spie_records_on_path () =
  let sim, _net, h1, h2, gws, spie = spie_chain () in
  let captured = ref None in
  h2.Node.local_deliver <- (fun _ pkt -> captured := Some pkt);
  Network.originate _net h1 (data ~src:h1.Node.addr ~dst:h2.Node.addr);
  Sim.run sim;
  let pkt = Option.get !captured in
  Array.iter
    (fun gw ->
      match Spie.store_of spie gw with
      | Some store ->
        checkb (gw.Node.name ^ " saw it") true
          (Spie.seen store ~now:(Sim.now sim) pkt)
      | None -> Alcotest.fail "store missing")
    gws

let test_spie_reconstruct_path () =
  let sim, net, h1, h2, gws, spie = spie_chain () in
  let captured = ref None in
  h2.Node.local_deliver <- (fun _ pkt -> captured := Some pkt);
  Network.originate net h1 (data ~src:h1.Node.addr ~dst:h2.Node.addr);
  Sim.run sim;
  let pkt = Option.get !captured in
  (* Reconstruct from the victim-side gateway gw2: upstream trail is
     gw1, gw0 -> attacker-first [gw0; gw1]. *)
  let path, latency = Spie.reconstruct spie ~from:gws.(2) pkt in
  check (Alcotest.list Alcotest.string) "attacker-first path"
    [ "5.0.0.1"; "5.1.0.1" ]
    (List.map Addr.to_string path);
  checkb "positive latency" true (latency > 0.);
  checkb "queries counted" true (Spie.queries spie > 0)

let test_spie_unknown_packet_empty_path () =
  let _sim, _net, _h1, _h2, gws, spie = spie_chain () in
  let stranger = data ~src:(addr "99.0.0.1") ~dst:(addr "98.0.0.1") in
  let path, _ = Spie.reconstruct spie ~from:gws.(2) stranger in
  checki "no path" 0 (List.length path)

let test_spie_window_expiry () =
  let sim, net, h1, h2, gws, spie = spie_chain () in
  (* Tiny windows: deploy default is 1 s x 8 windows; after > 8 s the digest
     must be forgotten. *)
  let captured = ref None in
  h2.Node.local_deliver <- (fun _ pkt -> captured := Some pkt);
  Network.originate net h1 (data ~src:h1.Node.addr ~dst:h2.Node.addr);
  Sim.run sim;
  let pkt = Option.get !captured in
  let store = Option.get (Spie.store_of spie gws.(0)) in
  checkb "fresh" true (Spie.seen store ~now:(Sim.now sim) pkt);
  (* Push lots of later traffic to roll the windows forward. *)
  ignore
    (Sim.at sim 20. (fun () ->
         Network.originate net h1 (data ~src:h1.Node.addr ~dst:h2.Node.addr)));
  Sim.run sim;
  checkb "forgotten after windows rolled" false
    (Spie.seen store ~now:(Sim.now sim) pkt)

(* --- PPM ------------------------------------------------------------------ *)

let mk_border i =
  Node.make ~id:i ~name:(Printf.sprintf "r%d" i)
    ~addr:(Addr.of_octets 5 i 0 1)
    ~as_id:i Node.Border_router

let run_ppm_path ~p ~hops ~packets =
  let rng = Rng.create ~seed:99 in
  let routers = List.init hops mk_border in
  let collector = Ppm.Collector.create () in
  for _ = 1 to packets do
    let pkt = data ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") in
    List.iter (fun r -> ignore (Ppm.hook ~p ~rng r pkt)) routers;
    Ppm.Collector.observe collector pkt
  done;
  (routers, collector)

let test_ppm_reconstructs_path () =
  let routers, collector = run_ppm_path ~p:0.2 ~hops:4 ~packets:3000 in
  match Ppm.Collector.reconstruct collector with
  | None -> Alcotest.fail "expected convergence"
  | Some path ->
    let expected = List.map (fun (r : Node.t) -> r.Node.addr) routers in
    check (Alcotest.list Alcotest.string) "attacker-first path"
      (List.map Addr.to_string expected)
      (List.map Addr.to_string path)

let test_ppm_insufficient_samples () =
  let _, collector = run_ppm_path ~p:0.01 ~hops:6 ~packets:3 in
  (* With almost no samples the collector should not fabricate a full
     path; either None or a strict prefix of length < hops+? is fine. We
     only require it not to produce a wrong chain of full length. *)
  match Ppm.Collector.reconstruct collector with
  | None -> ()
  | Some path -> checkb "short or absent" true (List.length path <= 6)

let test_ppm_samples_counted () =
  let _, collector = run_ppm_path ~p:0.5 ~hops:3 ~packets:100 in
  checkb "marks observed" true (Ppm.Collector.samples collector > 0)

let test_ppm_expected_samples_monotone () =
  let e4 = Ppm.Collector.expected_samples ~p:0.04 ~hops:4 in
  let e8 = Ppm.Collector.expected_samples ~p:0.04 ~hops:8 in
  checkb "more hops need more samples" true (e8 > e4);
  checkb "degenerate p" true
    (Ppm.Collector.expected_samples ~p:0. ~hops:4 = infinity)

(* Mark spoofing ([SWKA00]'s known caveat): the attacker pre-loads fake
   edge marks in its own packets. A genuine distance-0 edge appears with
   probability p (the victim-adjacent router marks); the fake one survives
   all routers with probability (1-p)^hops. The most-frequent-edge
   collector therefore resists spoofing iff p > (1-p)^hops. *)
let run_ppm_spoofed ~p ~hops ~packets =
  let rng = Rng.create ~seed:123 in
  let routers = List.init hops mk_border in
  let collector = Ppm.Collector.create () in
  let fake = addr "66.6.6.6" in
  for _ = 1 to packets do
    let pkt = data ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") in
    pkt.Packet.ppm_mark <- Some (fake, fake, 0);
    List.iter (fun r -> ignore (Ppm.hook ~p ~rng r pkt)) routers;
    Ppm.Collector.observe collector pkt
  done;
  (routers, collector)

let test_ppm_mark_spoofing_resisted_at_high_p () =
  (* p = 0.4, 4 hops: the genuine d0 edge (frequency p = 0.4) beats the
     surviving fake (0.6^4 = 0.13), so the victim-near part of the path is
     intact. Savage's known residual weakness remains: the forger's mark
     can prepend hops {e upstream of itself} — which only costs AITF's
     escalation an extra round, since round 0 then targets a ghost. *)
  let routers, collector = run_ppm_spoofed ~p:0.4 ~hops:4 ~packets:4000 in
  match Ppm.Collector.reconstruct collector with
  | None -> Alcotest.fail "expected reconstruction"
  | Some path ->
    let expected =
      List.map (fun (r : Node.t) -> Addr.to_string r.Node.addr) routers
    in
    let got = List.map Addr.to_string path in
    let suffix l n =
      let len = List.length l in
      List.filteri (fun i _ -> i >= len - n) l
    in
    check (Alcotest.list Alcotest.string)
      "genuine path survives as the victim-near suffix" expected
      (suffix got (List.length expected));
    checkb "at most one fake hop prepended" true
      (List.length got <= List.length expected + 1)

let test_ppm_mark_spoofing_wins_at_low_p () =
  (* p = 0.05, 6 hops: spoofed d0 frequency 0.95^6 = 0.74 >> genuine 0.05 —
     the documented failure mode, pinned so the trade-off stays visible. *)
  let _, collector = run_ppm_spoofed ~p:0.05 ~hops:6 ~packets:4000 in
  match Ppm.Collector.reconstruct collector with
  | None -> () (* no convergence also counts as not-fooled-into-wrong-path *)
  | Some path ->
    checkb "reconstruction poisoned by the fake edge" true
      (List.exists (Addr.equal (addr "66.6.6.6")) path)

let test_ppm_no_marking_no_reconstruction () =
  let collector = Ppm.Collector.create () in
  let pkt = data ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.2") in
  Ppm.Collector.observe collector pkt;
  checkb "no marks, no path" true (Ppm.Collector.reconstruct collector = None);
  checki "no samples" 0 (Ppm.Collector.samples collector)

let () =
  Alcotest.run "aitf_traceback"
    [
      ( "route_record",
        [
          Alcotest.test_case "hook stamps" `Quick test_rr_hook_stamps;
          Alcotest.test_case "round indexing" `Quick test_rr_round_indexing;
          Alcotest.test_case "end-to-end order" `Quick test_rr_end_to_end_order;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "membership" `Quick test_bloom_membership;
          Alcotest.test_case "clear" `Quick test_bloom_clear;
          Alcotest.test_case "fp rate" `Quick test_bloom_fp_rate_reasonable;
          Alcotest.test_case "validation" `Quick test_bloom_validation;
          QCheck_alcotest.to_alcotest bloom_no_false_negatives;
        ] );
      ( "spie",
        [
          Alcotest.test_case "digest stability" `Quick
            test_spie_digest_excludes_mutables;
          Alcotest.test_case "records on path" `Quick test_spie_records_on_path;
          Alcotest.test_case "reconstruct" `Quick test_spie_reconstruct_path;
          Alcotest.test_case "unknown packet" `Quick
            test_spie_unknown_packet_empty_path;
          Alcotest.test_case "window expiry" `Quick test_spie_window_expiry;
        ] );
      ( "ppm",
        [
          Alcotest.test_case "reconstructs path" `Quick
            test_ppm_reconstructs_path;
          Alcotest.test_case "insufficient samples" `Quick
            test_ppm_insufficient_samples;
          Alcotest.test_case "samples counted" `Quick test_ppm_samples_counted;
          Alcotest.test_case "expected samples" `Quick
            test_ppm_expected_samples_monotone;
          Alcotest.test_case "no marks" `Quick
            test_ppm_no_marking_no_reconstruction;
          Alcotest.test_case "mark spoofing resisted (high p)" `Quick
            test_ppm_mark_spoofing_resisted_at_high_p;
          Alcotest.test_case "mark spoofing wins (low p)" `Quick
            test_ppm_mark_spoofing_wins_at_low_p;
        ] );
    ]
