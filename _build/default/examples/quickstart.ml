(* Quickstart: the paper's Figure-1 scenario, end to end.

   B_host floods G_host; G_host asks its gateway for help; the request is
   propagated to B_gw1, verified with the 3-way handshake, and the flow is
   blocked one hop from its source. Run with:

     dune exec examples/quickstart.exe
*)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Trace = Aitf_engine.Trace
module Rate_meter = Aitf_stats.Rate_meter
open Aitf_net
open Aitf_core
open Aitf_topo
module Traffic = Aitf_workload.Traffic

let () =
  (* Print the protocol timeline as it happens. *)
  Trace.add_sink (Trace.printing_sink ());

  let sim = Sim.create () in
  let rng = Rng.create ~seed:1 in

  (* The Figure-1 topology: G_host - G_gw1 - G_gw2 - G_gw3 = B_gw3 - B_gw2 -
     B_gw1 - B_host, with a 10 Mbit/s tail circuit on each side. *)
  let topo = Chain.build sim Chain.default_spec in

  (* Protocol parameters scaled so one blocking cycle fits the demo:
     T = 6 s instead of the paper's 60 s. *)
  let config = Config.with_timescale Config.default 0.1 in

  (* Everyone speaks AITF; the attacker complies when asked (it prefers
     stopping one flow to losing connectivity). *)
  let d = Chain.deploy ~attacker_strategy:Policy.Complies ~config ~rng topo in

  (* B_host starts a 2 Mbit/s undesired flow towards G_host at t = 1 s. *)
  let (_ : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:1.0 ~attack:true ~flow_id:1 ~rate:2e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in

  print_endline "=== AITF quickstart: Figure-1 attack path ===";
  print_endline "    (timeline below: time [node] event)";
  Sim.run ~until:10.0 sim;

  let victim = d.Chain.victim_agent in
  let meter = Host_agent.Victim.attack_meter victim in
  Printf.printf "\n--- after 10 simulated seconds ---\n";
  Printf.printf "attack bytes that reached the victim : %8.0f B\n"
    (Host_agent.Victim.attack_bytes victim);
  Printf.printf "attack bytes offered by the attacker : %8.0f B\n"
    (2e6 *. 9.0 /. 8.);
  Printf.printf "effective bandwidth right now        : %8.0f bit/s\n"
    (8. *. Rate_meter.rate meter ~now:(Sim.now sim));
  Printf.printf "filtering requests sent by the victim: %8d\n"
    (Host_agent.Victim.requests_sent victim);
  Printf.printf "flow stopped at the source           : %8s\n"
    (if Host_agent.Attacker.flows_stopped d.Chain.attacker_agent > 0 then
       "yes"
     else "no");
  let b_gw1 = List.hd d.Chain.attacker_gateways in
  Printf.printf "filters held at B_gw1                : %8d (peak %d)\n"
    (Aitf_filter.Filter_table.occupancy (Gateway.filters b_gw1))
    (Aitf_filter.Filter_table.peak_occupancy (Gateway.filters b_gw1));
  let g_gw1 = List.hd d.Chain.victim_gateways in
  Printf.printf "filters held at G_gw1                : %8d (peak %d)\n"
    (Aitf_filter.Filter_table.occupancy (Gateway.filters g_gw1))
    (Aitf_filter.Filter_table.peak_occupancy (Gateway.filters g_gw1));
  print_endline
    "\nThe victim's gateway only ever held its temporary filter; the flow\n\
     is blocked at the AITF node closest to the attacker, as Section II-D\n\
     describes."
