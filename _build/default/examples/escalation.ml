(* Escalation through non-cooperating gateways (Section II-D's worst case).

   Every attacker-side gateway ignores filtering requests. Round by round,
   the mechanism climbs: G_gw1 asks B_gw1 (ignored), escalates to G_gw2 who
   asks B_gw2 (ignored), escalates to G_gw3 who asks B_gw3 (ignored) — and
   finally G_gw3 filters the flow itself and, with enforcement on,
   disconnects the peering. The bystander inside B_net shows the collateral
   cost of that last resort. Run with:

     dune exec examples/escalation.exe
*)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Trace = Aitf_engine.Trace
module Counter = Aitf_stats.Counter
open Aitf_net
open Aitf_core
open Aitf_topo
module Traffic = Aitf_workload.Traffic

let () =
  Trace.add_sink (Trace.printing_sink ());
  let sim = Sim.create () in
  let rng = Rng.create ~seed:3 in
  let topo = Chain.build sim Chain.default_spec in
  let config =
    {
      (Config.with_timescale Config.default 0.1) with
      Config.grace = 0.3;
      disconnect = true;
    }
  in
  let d =
    Chain.deploy ~attacker_strategy:Policy.Ignores
      ~attacker_gw_policies:(Chain.non_cooperating 3) ~config ~rng topo
  in
  let (_ : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:1.0 ~attack:true ~flow_id:1 ~rate:2e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  (* An innocent flow from inside the rogue ISP. *)
  let bystander_delivered = ref 0 in
  let prev = topo.Chain.victim.Node.local_deliver in
  topo.Chain.victim.Node.local_deliver <-
    (fun node (pkt : Packet.t) ->
      (match pkt.Packet.payload with
      | Packet.Data { flow_id = 2; _ } -> incr bystander_delivered
      | _ -> ());
      prev node pkt);
  let (_ : Traffic.t) =
    Traffic.cbr ~start:0. ~flow_id:2 ~rate:2e5
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.bystander
  in
  print_endline "=== escalation with a fully non-cooperative attacker side ===\n";
  Sim.run ~until:8.0 sim;
  print_newline ();
  List.iteri
    (fun i gw ->
      Printf.printf "G_gw%d: escalations=%d, temp filters=%d, long filters=%d\n"
        (i + 1)
        (Counter.get (Gateway.counters gw) "escalated")
        (Counter.get (Gateway.counters gw) "filter-temp")
        (Counter.get (Gateway.counters gw) "filter-long"
        + Counter.get (Gateway.counters gw) "filter-long-self"))
    d.Chain.victim_gateways;
  List.iteri
    (fun i gw ->
      Printf.printf "B_gw%d: requests ignored=%d\n" (i + 1)
        (Counter.get (Gateway.counters gw) "ignored-unresponsive"))
    d.Chain.attacker_gateways;
  let meter = Host_agent.Victim.attack_meter d.Chain.victim_agent in
  Printf.printf "\nattack bandwidth at the victim now: %.0f bit/s\n"
    (8. *. Aitf_stats.Rate_meter.rate meter ~now:(Sim.now sim));
  Printf.printf "bystander packets that still got through: %d\n"
    !bystander_delivered;
  print_endline
    "\nFiltering climbed one AITF node per round and ended at the victim's\n\
     own top-level provider — with the peering to the rogue ISP cut, the\n\
     bystander pays the price of its provider's non-cooperation."
