examples/ddos_mitigation.ml: Aitf_obs Aitf_stats Aitf_workload Float List Option Printf String
