examples/ddos_mitigation.ml: Aitf_stats Aitf_workload Float Printf
