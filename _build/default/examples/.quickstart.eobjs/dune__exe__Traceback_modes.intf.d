examples/traceback_modes.mli:
