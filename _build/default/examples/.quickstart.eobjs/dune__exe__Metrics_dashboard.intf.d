examples/metrics_dashboard.mli:
