examples/escalation.mli:
