examples/onoff_attack.mli:
