examples/metrics_dashboard.ml: Aitf_core Aitf_obs Aitf_stats Aitf_workload List Printf String
