examples/operator_console.ml: Aitf_core Aitf_engine Aitf_net Aitf_stats Aitf_topo Aitf_workload Array Config Fun Hierarchy Host_agent List Node Policy Printf
