examples/traceback_modes.ml: Aitf_core Aitf_engine Aitf_net Aitf_stats Aitf_topo Aitf_traceback Aitf_workload Chain Config Gateway Host_agent List Node Printf
