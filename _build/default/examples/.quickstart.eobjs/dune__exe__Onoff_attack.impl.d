examples/onoff_attack.ml: Aitf_core Aitf_engine Aitf_workload Config Policy Printf
