examples/quickstart.mli:
