examples/operator_console.mli:
