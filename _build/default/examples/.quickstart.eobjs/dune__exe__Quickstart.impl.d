examples/quickstart.ml: Aitf_core Aitf_engine Aitf_filter Aitf_net Aitf_stats Aitf_topo Aitf_workload Chain Config Gateway Host_agent List Node Policy Printf
