(* The three traceback mechanisms, side by side (Section II-F's assumption).

   AITF needs to know the attack path. The paper assumes "an efficient
   traceback technique" and cites three ways to get one; this example runs
   the same attack under each and shows what the mechanism costs and how
   fast the request lands at the attacker's gateway. Run with:

     dune exec examples/traceback_modes.exe
*)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Counter = Aitf_stats.Counter
module Table = Aitf_stats.Table
open Aitf_net
open Aitf_core
open Aitf_topo
module Traffic = Aitf_workload.Traffic

let base_config =
  { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 }

type outcome = {
  landed_after : float option;  (* s after attack start *)
  leaked : float;
  requests : int;
  cost : string;
}

let run ~make =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:29 in
  let topo = Chain.build sim Chain.default_spec in
  let config, path_source, cost = make topo in
  let d = Chain.deploy ~victim_td:0.1 ~path_source ~config ~rng topo in
  let (_ : Traffic.t) =
    Traffic.cbr
      ~gate:(Host_agent.Attacker.gate d.Chain.attacker_agent)
      ~start:1.0 ~attack:true ~flow_id:1 ~rate:1e6
      ~dst:topo.Chain.victim.Node.addr topo.Chain.net topo.Chain.attacker
  in
  let b_gw1 = List.hd d.Chain.attacker_gateways in
  let landed = ref None in
  let rec poll t =
    if t < 10. then
      ignore
        (Sim.at sim t (fun () ->
             if
               !landed = None
               && Counter.get (Gateway.counters b_gw1) "filter-long" > 0
             then landed := Some (t -. 1.0);
             poll (t +. 0.01)))
  in
  poll 1.0;
  Sim.run ~until:10.0 sim;
  {
    landed_after = !landed;
    leaked = Host_agent.Victim.attack_bytes d.Chain.victim_agent;
    requests = Host_agent.Victim.requests_sent d.Chain.victim_agent;
    cost = cost ();
  }

let () =
  print_endline "=== traceback mechanisms under the same attack ===\n";
  let route_record =
    run ~make:(fun _ ->
        (base_config, Host_agent.From_route_record, fun () -> "16 B of header"))
  in
  let spie =
    run ~make:(fun topo ->
        let spie = Aitf_traceback.Spie.deploy topo.Chain.net in
        ( { base_config with Config.traceback = Config.Spie_query spie },
          Host_agent.Gateway_traceback,
          fun () ->
            Printf.sprintf "%d digest queries" (Aitf_traceback.Spie.queries spie)
        ))
  in
  let ppm =
    run ~make:(fun topo ->
        let mark_rng = Rng.create ~seed:31 in
        List.iter
          (fun gw -> Aitf_traceback.Ppm.install ~p:0.2 ~rng:mark_rng gw)
          (topo.Chain.victim_gws @ topo.Chain.attacker_gws);
        let collector = Aitf_traceback.Ppm.Collector.create () in
        ( base_config,
          Host_agent.From_ppm collector,
          fun () ->
            Printf.sprintf "%d marked packets observed"
              (Aitf_traceback.Ppm.Collector.samples collector) ))
  in
  let table =
    Table.create ~title:"traceback comparison"
      ~columns:
        [ "mechanism"; "request landed after (s)"; "leaked (kB)"; "requests";
          "mechanism cost" ]
  in
  let row name (o : outcome) =
    Table.add_row table
      [
        name;
        (match o.landed_after with
        | Some t -> Printf.sprintf "%.2f" t
        | None -> "never");
        Printf.sprintf "%.0f" (o.leaked /. 1e3);
        string_of_int o.requests;
        o.cost;
      ]
  in
  row "route record [CG00]" route_record;
  row "SPIE digests [SPS+01]" spie;
  row "PPM marking [SWKA00]" ppm;
  Table.print table;
  print_endline
    "The route record makes traceback free but costs header space on every\n\
     packet; SPIE moves the cost to the gateways (digest memory + query\n\
     round trips at request time); PPM costs the victim convergence time\n\
     before its first request. Whatever the choice, Ttmp must cover it\n\
     (Section IV-B)."
