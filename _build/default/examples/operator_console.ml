(* An operator's view of a DDoS response, as periodic dashboards.

   A zombie army floods a server; every five simulated seconds the example
   prints what a network operator would watch: the victim's tail circuit,
   the AITF gateways' filter tables and decision counters. Run with:

     dune exec examples/operator_console.exe
*)

module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
module Table = Aitf_stats.Table
open Aitf_net
open Aitf_core
open Aitf_topo
module Traffic = Aitf_workload.Traffic
module Report = Aitf_workload.Report

let () =
  let sim = Sim.create () in
  let rng = Rng.create ~seed:4 in
  let spec =
    { Hierarchy.default_spec with Hierarchy.isps = 2; nets_per_isp = 2; hosts_per_net = 3 }
  in
  let t = Hierarchy.build sim spec in
  let config =
    { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 }
  in
  let d = Hierarchy.deploy ~config ~rng t in
  let victim_node = Hierarchy.host t ~isp:0 ~net:0 ~host:0 in
  let victim =
    Hierarchy.attach_victim ~td:0.1 d ~config ~isp:0 ~net:0 ~host:0
  in
  (* A legit client and four zombies in the other ISP. *)
  ignore
    (Traffic.cbr ~start:0. ~flow_id:1 ~rate:2e5 ~dst:victim_node.Node.addr
       t.Hierarchy.net
       (Hierarchy.host t ~isp:0 ~net:1 ~host:0));
  for z = 0 to 3 do
    let agent =
      Hierarchy.attach_attacker ~strategy:Policy.Ignores d ~config ~isp:1
        ~net:(z mod 2) ~host:(z / 2)
    in
    ignore
      (Traffic.cbr
         ~gate:(Host_agent.Attacker.gate agent)
         ~start:3.0 ~attack:true ~flow_id:(100 + z) ~rate:2e6
         ~dst:victim_node.Node.addr t.Hierarchy.net
         (Hierarchy.host t ~isp:1 ~net:(z mod 2) ~host:(z / 2)))
  done;
  let gateways =
    Array.to_list d.Hierarchy.isp_gateways
    @ List.concat_map Array.to_list (Array.to_list (Array.map Fun.id d.Hierarchy.net_gateways))
  in
  let snapshot at =
    ignore
      (Sim.at sim at (fun () ->
           Printf.printf "\n########## t = %.0f s ##########\n" at;
           let meter = Host_agent.Victim.attack_meter victim in
           Printf.printf "attack bandwidth at victim: %.0f bit/s; requests sent: %d\n\n"
             (8. *. Aitf_stats.Rate_meter.rate meter ~now:at)
             (Host_agent.Victim.requests_sent victim);
           Table.print (Report.gateway_table gateways)))
  in
  List.iter snapshot [ 2.; 5.; 10.; 15. ];
  print_endline "=== operator console: 4 zombies hit at t = 3 s ===";
  Sim.run ~until:16.0 sim;
  print_endline
    "\nBetween t = 2 and t = 5 the zombies' own enterprise gateways pick up\n\
     the long filters; by t = 10 the victim-side tables are empty again and\n\
     the attack bandwidth at the victim is zero."
