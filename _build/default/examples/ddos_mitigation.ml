(* A distributed attack against a web server, with and without AITF.

   Twelve zombies scattered over two ISPs flood a server's 10 Mbit/s tail
   circuit while legitimate clients keep using it. The example runs the
   same scenario twice — AITF disabled, then enabled — and prints the
   legitimate goodput and where the filtering ended up. Run with:

     dune exec examples/ddos_mitigation.exe
*)

module Table = Aitf_stats.Table
module Scenarios = Aitf_workload.Scenarios

let params =
  {
    Scenarios.default_flood with
    Scenarios.zombies = 12;
    zombie_rate = 2e6;
    legit_clients = 4;
    legit_rate = 2e5;
    flood_duration = 20.;
    attack_start = 2.;
  }

let () =
  Printf.printf
    "=== DDoS mitigation: %d zombies x %.0f Mbit/s vs a 10 Mbit/s tail ===\n\n"
    params.Scenarios.zombies
    (params.Scenarios.zombie_rate /. 1e6);
  let off = Scenarios.run_flood { params with Scenarios.with_aitf = false } in
  let on = Scenarios.run_flood params in
  let table =
    Table.create ~title:"with vs without AITF"
      ~columns:
        [ "setup"; "legit goodput"; "attack delivered";
          "leaf filter installs"; "ISP filters" ]
  in
  let row label (o : Scenarios.flood_result) =
    Table.add_row table
      [
        label;
        Printf.sprintf "%.0f kB (%.0f%% of offered)"
          (o.Scenarios.legit_received_bytes /. 1e3)
          (100. *. o.Scenarios.legit_received_bytes
          /. Float.max 1. o.Scenarios.legit_offered_bytes);
        Printf.sprintf "%.0f kB" (o.Scenarios.flood_attack_received_bytes /. 1e3);
        string_of_int o.Scenarios.leaf_filters;
        string_of_int o.Scenarios.isp_filters;
      ]
  in
  row "no AITF" off;
  row "AITF" on;
  Table.print table;
  print_endline
    "Every zombie is blocked by its own enterprise gateway, once per T\n\
     cycle while it keeps attacking; nothing accumulates in the ISPs or\n\
     the core — the scaling argument of Section III-C."
