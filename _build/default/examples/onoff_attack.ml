(* The "on-off" game (Section II-B) and why the shadow cache matters.

   A non-cooperative attacker gateway ignores filtering requests, and the
   attacker stops sending just long enough for the victim's gateway to drop
   its temporary filter, then resumes. The DRAM shadow of the request
   recognises the flow the moment it reappears and escalates to the next
   gateway up the path. The example contrasts the shadow-enabled run with
   a crippled run whose shadow horizon equals the temporary filter (so
   reappearance looks like a brand-new flow each time). Run with:

     dune exec examples/onoff_attack.exe
*)

module Trace = Aitf_engine.Trace
open Aitf_core
module Scenarios = Aitf_workload.Scenarios

let base_config =
  { (Config.with_timescale Config.default 0.1) with Config.grace = 0.3 }

let run ~label ~shadow_horizon ~traced =
  if traced then Trace.add_sink (Trace.printing_sink ());
  let config = { base_config with Config.t_filter = shadow_horizon } in
  (* t_filter doubles as the shadow TTL; to cripple the shadow while keeping
     the attacker-side blocking interval comparable we instead shorten the
     whole horizon — the contrast below uses leak ratios, which stay
     comparable. *)
  let params =
    {
      Scenarios.default_chain with
      Scenarios.config;
      duration = 60.;
      n_non_coop_gws = 1;
      attacker_strategy = Policy.On_off { off_time = config.Config.t_tmp +. 0.2 };
      td = 0.1;
    }
  in
  let r = Scenarios.run_chain params in
  if traced then Trace.clear_sinks ();
  Printf.printf "%-28s leaked %7.0f of %8.0f bytes (r = %.4f), escalations = %d\n"
    label r.Scenarios.attack_received_bytes r.Scenarios.attack_offered_bytes
    r.Scenarios.r_measured r.Scenarios.escalations;
  r

let () =
  print_endline "=== on-off attacker vs the shadow cache ===";
  print_endline "B_gw1 ignores requests; the attacker plays on-off.\n";
  let with_shadow = run ~label:"with shadow (T = 6 s)" ~shadow_horizon:6.0 ~traced:false in
  let weak_shadow = run ~label:"short shadow (T = 1.5 s)" ~shadow_horizon:1.5 ~traced:false in
  print_newline ();
  Printf.printf
    "With the full-T shadow the gateway escalates past the complicit B_gw1\n\
     (%d escalations) and the flow stays dead between cycles. With a shadow\n\
     that barely outlives the temporary filter, every reappearance is\n\
     treated as new and the attacker leaks on every round (r %.4f vs %.4f).\n"
    with_shadow.Scenarios.escalations weak_shadow.Scenarios.r_measured
    with_shadow.Scenarios.r_measured
