lib/filter/filter_table.ml: Aitf_engine Aitf_net Aitf_obs Float Flow_label Hashtbl List Option Packet Token_bucket
