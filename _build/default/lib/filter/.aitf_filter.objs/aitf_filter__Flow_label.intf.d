lib/filter/flow_label.mli: Addr Aitf_net Format Packet
