lib/filter/token_bucket.ml: Float
