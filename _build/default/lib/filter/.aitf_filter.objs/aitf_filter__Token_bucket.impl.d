lib/filter/token_bucket.ml: Aitf_obs Float
