lib/filter/shadow_cache.ml: Aitf_engine Aitf_net Float Flow_label Hashtbl List Packet
