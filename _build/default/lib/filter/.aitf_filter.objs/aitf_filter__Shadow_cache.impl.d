lib/filter/shadow_cache.ml: Aitf_engine Aitf_net Aitf_obs Float Flow_label Hashtbl List Packet
