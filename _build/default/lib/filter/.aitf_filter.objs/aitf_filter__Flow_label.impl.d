lib/filter/flow_label.ml: Addr Aitf_net Format Hashtbl Int List Option Packet Printf String
