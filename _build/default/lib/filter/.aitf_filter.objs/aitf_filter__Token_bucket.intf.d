lib/filter/token_bucket.mli: Aitf_obs
