lib/filter/token_bucket.mli:
