lib/filter/shadow_cache.mli: Aitf_engine Aitf_net Flow_label Packet
