lib/filter/shadow_cache.mli: Aitf_engine Aitf_net Aitf_obs Flow_label Packet
