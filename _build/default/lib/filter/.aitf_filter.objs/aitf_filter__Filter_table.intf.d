lib/filter/filter_table.mli: Aitf_engine Aitf_net Aitf_obs Flow_label Packet
