lib/filter/filter_table.mli: Aitf_engine Aitf_net Flow_label Packet
