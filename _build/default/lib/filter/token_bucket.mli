(** Token-bucket rate policer.

    Realises the filtering contracts of the paper: "the rate R at which A
    accepts filtering requests". A bucket refills continuously at [rate]
    tokens per second up to [burst]; each admitted event consumes one token
    (or an explicit [cost]). Requests arriving when the bucket is empty are
    rejected — "indiscriminately dropped", as the paper puts it. *)

type t

val create : rate:float -> burst:float -> t
(** Starts full. [rate] and [burst] must be positive. *)

val allow : ?cost:float -> t -> now:float -> bool
(** Admit an event at virtual time [now] if at least [cost] (default 1)
    tokens are available, consuming them. [now] must not go backwards. *)

val peek_tokens : t -> now:float -> float
(** Tokens available at [now], without consuming. *)

val rate : t -> float
val burst : t -> float

val admitted : t -> int
val denied : t -> int

val register_metrics : t -> Aitf_obs.Metrics.t -> prefix:string -> unit
(** Register admitted/denied counters under [prefix] (e.g.
    ["gateway.B_gw1.policer"]). *)
