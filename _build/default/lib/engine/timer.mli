(** One-shot and periodic timers on top of {!Sim}.

    Timers add cancellation-aware convenience over raw event scheduling:
    a periodic timer re-arms itself until stopped, and a one-shot timer can
    be rescheduled (pushed back) before it fires — the pattern used for
    protocol grace periods. *)

type t

val one_shot : Sim.t -> delay:float -> (unit -> unit) -> t
(** Fire once after [delay] seconds. *)

val periodic : ?start:float -> Sim.t -> period:float -> (unit -> unit) -> t
(** Fire every [period] seconds; the first firing happens after
    [start] (default [period]) seconds. [period] must be positive. *)

val cancel : t -> unit
(** Stop the timer; idempotent. A periodic timer stops re-arming. *)

val reschedule : t -> delay:float -> unit
(** For a one-shot timer: move the (pending or already-fired) firing to
    [now + delay]. For a periodic timer: delay the next firing to
    [now + delay], after which the normal period resumes. *)

val active : t -> bool
(** [true] while a firing is still pending. *)
