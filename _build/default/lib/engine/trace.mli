(** Lightweight structured tracing for simulation runs.

    Components emit timestamped, categorised lines; sinks decide what to do
    with them. Examples install a printing sink to show protocol timelines;
    tests install a collecting sink to assert on event sequences. Tracing is
    disabled (zero sinks) by default and costs one branch per emission. *)

type event = { time : float; category : string; message : string }

type sink = event -> unit

val add_sink : sink -> unit
(** Register a sink. Sinks receive every subsequent event. *)

val clear_sinks : unit -> unit
(** Remove all sinks (used between test cases). *)

val enabled : unit -> bool
(** [true] iff at least one sink is registered. *)

val emit : time:float -> category:string -> string -> unit
(** Emit an event to all sinks; no-op when none are registered. *)

val emitf :
  time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!emit} with a format string; the message is only built when a sink
    is registered. *)

val printing_sink : ?out:Format.formatter -> unit -> sink
(** A sink that prints ["%8.4f [category] message"] lines. *)

val collecting_sink : unit -> sink * (unit -> event list)
(** A sink that accumulates events plus a function returning them in
    emission order. *)
