type t = {
  state : Random.State.t;
  mutable zipf_cache : (int * float * float array) option;
      (* (n, s, cumulative weights) for the last zipf parameters used *)
}

let create ~seed = { state = Random.State.make [| seed |]; zipf_cache = None }

let split t =
  let seed = Random.State.bits t.state in
  create ~seed

let int t bound = Random.State.int t.state bound
let float t bound = Random.State.float t.state bound
let bool t = Random.State.bool t.state

let bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t.state 1.0 < p

let uniform t ~lo ~hi = lo +. Random.State.float t.state (hi -. lo)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  (* Avoid log 0 by sampling in (0, 1]. *)
  let u = 1.0 -. Random.State.float t.state 1.0 in
  -.log u /. rate

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Rng.pareto: shape and scale must be positive";
  let u = 1.0 -. Random.State.float t.state 1.0 in
  scale /. (u ** (1.0 /. shape))

let zipf_weights n s =
  let w = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    w.(i) <- !acc
  done;
  w

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let weights =
    match t.zipf_cache with
    | Some (n', s', w) when n' = n && s' = s -> w
    | _ ->
      let w = zipf_weights n s in
      t.zipf_cache <- Some (n, s, w);
      w
  in
  let total = weights.(n - 1) in
  let u = Random.State.float t.state total in
  (* Binary search for the first cumulative weight >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if weights.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1) + 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(Random.State.int t.state (Array.length a))

let nonce t = Random.State.int64 t.state Int64.max_int
