(** Resizable-array binary min-heap.

    The heap is parameterised by an explicit comparison function supplied at
    creation time, so the same structure serves event queues (ordered by
    time, then sequence number) and any other priority workload in the
    simulator. All operations are imperative; [pop] and [peek] never observe
    elements out of order with respect to the comparison. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest element at the
    top). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. Amortised O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. O(log n). *)

val clear : 'a t -> unit
(** Remove every element. The backing store is released. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order (heap order of the backing array). *)
