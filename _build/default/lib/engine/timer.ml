type kind = One_shot | Periodic of float

type t = {
  sim : Sim.t;
  kind : kind;
  action : unit -> unit;
  mutable handle : Sim.handle option;
  mutable cancelled : bool;
}

let rec arm t delay =
  let h =
    Sim.after t.sim delay (fun () ->
        t.handle <- None;
        if not t.cancelled then begin
          t.action ();
          match t.kind with
          | One_shot -> ()
          | Periodic period -> if not t.cancelled then arm t period
        end)
  in
  t.handle <- Some h

let one_shot sim ~delay action =
  let t = { sim; kind = One_shot; action; handle = None; cancelled = false } in
  arm t delay;
  t

let periodic ?start sim ~period action =
  if period <= 0. then invalid_arg "Timer.periodic: period must be positive";
  let t =
    { sim; kind = Periodic period; action; handle = None; cancelled = false }
  in
  arm t (match start with None -> period | Some s -> s);
  t

let cancel t =
  t.cancelled <- true;
  match t.handle with
  | None -> ()
  | Some h ->
    Sim.cancel h;
    t.handle <- None

let reschedule t ~delay =
  if not t.cancelled then begin
    (match t.handle with Some h -> Sim.cancel h | None -> ());
    arm t delay
  end

let active t = (not t.cancelled) && Option.is_some t.handle
