lib/engine/event_queue.ml: Float Heap Int
