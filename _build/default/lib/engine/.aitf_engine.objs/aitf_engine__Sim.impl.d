lib/engine/sim.ml: Event_queue Fun Printf
