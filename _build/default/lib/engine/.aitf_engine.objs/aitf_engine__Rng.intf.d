lib/engine/rng.mli:
