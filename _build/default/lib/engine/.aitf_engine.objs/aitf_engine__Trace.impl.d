lib/engine/trace.ml: Format List
