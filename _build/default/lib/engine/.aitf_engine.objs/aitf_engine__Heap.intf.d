lib/engine/heap.mli:
