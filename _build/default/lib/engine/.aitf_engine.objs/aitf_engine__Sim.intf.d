lib/engine/sim.mli: Event_queue
