(** Deterministic random-number utilities for simulations.

    Every scenario takes a seed and derives all randomness from a single
    [Rng.t], so runs are reproducible bit-for-bit. The distributions here are
    the ones needed by the workload generators: uniform, exponential (Poisson
    inter-arrivals), Pareto (heavy-tailed flow sizes) and Zipf (skewed victim
    or zombie popularity). *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator whose stream is a deterministic function of the parent's
    state; use one per independent traffic source so that adding a source
    does not perturb the others' streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [true] with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> rate:float -> float
(** Exponential variate with mean [1 /. rate]. [rate] must be positive. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto variate >= [scale] with tail index [shape]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s]. O(n) setup per
    call is avoided by inverse-CDF over a cached normaliser only when [n]
    matches the previous call; intended for moderate [n]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val nonce : t -> int64
(** 64-bit random value for protocol nonces. *)
