lib/topo/chain.ml: Addr Aitf_core Aitf_engine Aitf_net Config Gateway Host_agent Link List Network Node Policy Printf
