lib/topo/hierarchy.ml: Addr Aitf_core Aitf_engine Aitf_net Array Gateway Host_agent Network Node Policy Printf
