lib/topo/chain.mli: Aitf_core Aitf_engine Aitf_net Config Gateway Host_agent Link Network Node Policy
