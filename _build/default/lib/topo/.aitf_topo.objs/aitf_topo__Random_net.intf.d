lib/topo/random_net.mli: Addr Aitf_core Aitf_engine Aitf_net Config Gateway Host_agent Network Node Policy
