(** A provider hierarchy: core — ISPs — enterprise networks — hosts.

    The topology for multi-attacker and scaling experiments. A single core
    router interconnects [isps] ISP border routers; each ISP serves
    [nets_per_isp] enterprise networks, each with a border gateway and
    [hosts_per_net] hosts. Routing advertisements are aggregated — each
    enterprise /16 is advertised globally by its gateway, host /32s stay
    AS-local — so FIBs stay small as the hierarchy grows.

    Address plan: host k of net j of ISP i is [(10+i).j.0.(10+k)]; the net
    gateway is [(10+i).j.0.1]; the ISP gateway [(10+i).255.0.1] with the
    whole [(10+i).0.0.0/8] as its customer cone. *)

open Aitf_net
open Aitf_core

type spec = {
  isps : int;
  nets_per_isp : int;  (** <= 255 *)
  hosts_per_net : int;  (** <= 200 *)
  tail_bw : float;  (** host access links *)
  net_bw : float;  (** enterprise <-> ISP *)
  core_bw : float;  (** ISP <-> core *)
  access_delay : float;
  hop_delay : float;
  queue_capacity : int;
}

val default_spec : spec
(** 3 ISPs × 4 nets × 4 hosts, 10 Mbit/s tails, 100 Mbit/s enterprise
    uplinks, 1 Gbit/s core, 5 ms access, 10 ms hops. *)

type t = {
  net : Network.t;
  core : Node.t;
  isp_gws : Node.t array;
  net_gws : Node.t array array;  (** [.(isp).(net)] *)
  hosts : Node.t array array array;  (** [.(isp).(net).(host)] *)
}

val build : Aitf_engine.Sim.t -> spec -> t

val host : t -> isp:int -> net:int -> host:int -> Node.t
val net_gw_of : t -> isp:int -> net:int -> Node.t
val net_prefix : isp:int -> net:int -> Addr.prefix
val isp_prefix : isp:int -> Addr.prefix

type deployed = {
  topo : t;
  net_gateways : Gateway.t array array;
  isp_gateways : Gateway.t array;
}

val deploy :
  ?policies:(isp:int -> net:int -> Policy.gateway_policy) ->
  config:Config.t ->
  rng:Aitf_engine.Rng.t ->
  t ->
  deployed
(** Run AITF on every enterprise and ISP gateway. [policies] selects each
    enterprise gateway's cooperation (default: all cooperative). Enterprise
    gateways escalate to their ISP gateway; ISP gateways are top-level. *)

val attach_victim :
  ?td:float ->
  ?path_source:Host_agent.path_source ->
  deployed ->
  config:Config.t ->
  isp:int ->
  net:int ->
  host:int ->
  Host_agent.Victim.t

val attach_attacker :
  ?strategy:Policy.attacker_response ->
  deployed ->
  config:Config.t ->
  isp:int ->
  net:int ->
  host:int ->
  Host_agent.Attacker.t
