module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_core

type spec = {
  isps : int;
  nets_per_isp : int;
  hosts_per_net : int;
  tail_bw : float;
  net_bw : float;
  core_bw : float;
  access_delay : float;
  hop_delay : float;
  queue_capacity : int;
}

let default_spec =
  {
    isps = 3;
    nets_per_isp = 4;
    hosts_per_net = 4;
    tail_bw = 10e6;
    net_bw = 100e6;
    core_bw = 1e9;
    access_delay = 0.005;
    hop_delay = 0.010;
    queue_capacity = 65536;
  }

type t = {
  net : Network.t;
  core : Node.t;
  isp_gws : Node.t array;
  net_gws : Node.t array array;
  hosts : Node.t array array array;
}

let net_prefix ~isp ~net = Addr.prefix (Addr.of_octets (10 + isp) net 0 0) 16
let isp_prefix ~isp = Addr.prefix (Addr.of_octets (10 + isp) 0 0 0) 8

(* AS numbering: core 1; ISP backbone i -> 100 + i; net (i, j) -> a unique
   id above 1000. *)
let net_as ~isp ~net = 1000 + (isp * 256) + net

let build sim spec =
  if spec.isps < 1 || spec.nets_per_isp < 1 || spec.hosts_per_net < 1 then
    invalid_arg "Hierarchy.build: all dimensions must be >= 1";
  if spec.nets_per_isp > 254 || spec.hosts_per_net > 200 then
    invalid_arg "Hierarchy.build: dimensions exceed the address plan";
  let net = Network.create sim in
  let core =
    Network.add_node net ~name:"core" ~addr:(Addr.of_octets 9 0 0 1) ~as_id:1
      Node.Router
  in
  let isp_gws =
    Array.init spec.isps (fun i ->
        let gw =
          Network.add_node net
            ~name:(Printf.sprintf "isp%d" i)
            ~addr:(Addr.of_octets (10 + i) 255 0 1)
            ~as_id:(100 + i) Node.Border_router
        in
        ignore
          (Network.connect net core gw ~bandwidth:spec.core_bw
             ~delay:spec.hop_delay ~queue_capacity:spec.queue_capacity);
        gw)
  in
  let net_gws =
    Array.init spec.isps (fun i ->
        Array.init spec.nets_per_isp (fun j ->
            let gw =
              Network.add_node net
                ~name:(Printf.sprintf "net%d_%d" i j)
                ~addr:(Addr.of_octets (10 + i) j 0 1)
                ~as_id:(net_as ~isp:i ~net:j) Node.Border_router
            in
            (* Aggregate: the /16 reaches the world via this gateway; host
               /32s stay inside the enterprise AS. *)
            gw.Node.advertised <-
              [ (net_prefix ~isp:i ~net:j, Node.Global);
                (Addr.host_prefix gw.Node.addr, Node.Global);
              ];
            ignore
              (Network.connect net isp_gws.(i) gw ~bandwidth:spec.net_bw
                 ~delay:spec.hop_delay ~queue_capacity:spec.queue_capacity);
            gw))
  in
  let hosts =
    Array.init spec.isps (fun i ->
        Array.init spec.nets_per_isp (fun j ->
            Array.init spec.hosts_per_net (fun k ->
                let h =
                  Network.add_node net
                    ~name:(Printf.sprintf "h%d_%d_%d" i j k)
                    ~addr:(Addr.of_octets (10 + i) j 0 (10 + k))
                    ~as_id:(net_as ~isp:i ~net:j) Node.Host
                in
                h.Node.advertised <-
                  [ (Addr.host_prefix h.Node.addr, Node.As_local) ];
                ignore
                  (Network.connect net net_gws.(i).(j) h
                     ~bandwidth:spec.tail_bw ~delay:spec.access_delay
                     ~queue_capacity:spec.queue_capacity);
                h)))
  in
  Network.compute_routes net;
  { net; core; isp_gws; net_gws; hosts }

let host t ~isp ~net ~host = t.hosts.(isp).(net).(host)
let net_gw_of t ~isp ~net = t.net_gws.(isp).(net)

type deployed = {
  topo : t;
  net_gateways : Gateway.t array array;
  isp_gateways : Gateway.t array;
}

let deploy ?(policies = fun ~isp:_ ~net:_ -> Policy.Cooperative) ~config ~rng t
    =
  let isp_gateways =
    Array.mapi
      (fun i gw ->
        Gateway.create ~policy:Policy.Cooperative
          ~clients:[ isp_prefix ~isp:i ] ~config ~rng:(Rng.split rng) t.net gw)
      t.isp_gws
  in
  let net_gateways =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j gw ->
            Gateway.create ~policy:(policies ~isp:i ~net:j)
              ~upstream:t.isp_gws.(i).Node.addr
              ~clients:[ net_prefix ~isp:i ~net:j ]
              ~config ~rng:(Rng.split rng) t.net gw)
          row)
      t.net_gws
  in
  { topo = t; net_gateways; isp_gateways }

let attach_victim ?td ?path_source d ~config ~isp ~net ~host =
  Host_agent.Victim.create ?td ?path_source
    ~gateway:d.topo.net_gws.(isp).(net).Node.addr
    ~config d.topo.net d.topo.hosts.(isp).(net).(host)

let attach_attacker ?strategy d ~config ~isp ~net ~host =
  Host_agent.Attacker.create ?strategy ~config d.topo.net
    d.topo.hosts.(isp).(net).(host)
