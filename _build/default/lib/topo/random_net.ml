module Rng = Aitf_engine.Rng
open Aitf_net
open Aitf_core

type spec = {
  transits : int;
  stubs : int;
  hosts_per_stub : int;
  multihoming_p : float;
  extra_peering_p : float;
  tail_bw : float;
  stub_bw : float;
  core_bw : float;
  access_delay : float;
  hop_delay : float;
  queue_capacity : int;
}

let default_spec =
  {
    transits = 4;
    stubs = 12;
    hosts_per_stub = 2;
    multihoming_p = 0.3;
    extra_peering_p = 0.3;
    tail_bw = 10e6;
    stub_bw = 100e6;
    core_bw = 1e9;
    access_delay = 0.005;
    hop_delay = 0.010;
    queue_capacity = 65536;
  }

type t = {
  net : Network.t;
  transit_gws : Node.t array;
  stub_gws : Node.t array;
  hosts : Node.t array array;
  stub_primary : int array;
  stub_secondary : int option array;
}

let stub_prefix ~stub = Addr.prefix (Addr.of_octets 10 stub 0 0) 16

let transit_as i = 100 + i
let stub_as s = 1000 + s

let build sim rng spec =
  if spec.transits < 2 then invalid_arg "Random_net.build: transits >= 2";
  if spec.stubs < 1 || spec.stubs > 200 then
    invalid_arg "Random_net.build: stubs in 1..200";
  let net = Network.create sim in
  let transit_gws =
    Array.init spec.transits (fun i ->
        Network.add_node net
          ~name:(Printf.sprintf "transit%d" i)
          ~addr:(Addr.of_octets 172 i 0 1)
          ~as_id:(transit_as i) Node.Border_router)
  in
  (* Transit ring guarantees connectivity; extra random peerings add path
     diversity. *)
  let connect_core a b =
    ignore
      (Network.connect net transit_gws.(a) transit_gws.(b)
         ~bandwidth:spec.core_bw ~delay:spec.hop_delay
         ~queue_capacity:spec.queue_capacity)
  in
  for i = 0 to spec.transits - 1 do
    connect_core i ((i + 1) mod spec.transits)
  done;
  for i = 0 to spec.transits - 1 do
    for j = i + 2 to spec.transits - 1 do
      (* skip ring neighbors (and the wrap-around pair) *)
      let ring_pair = i = 0 && j = spec.transits - 1 in
      if (not ring_pair) && Rng.bernoulli rng ~p:spec.extra_peering_p then
        connect_core i j
    done
  done;
  let stub_primary = Array.make spec.stubs 0 in
  let stub_secondary = Array.make spec.stubs None in
  let stub_gws =
    Array.init spec.stubs (fun s ->
        let gw =
          Network.add_node net
            ~name:(Printf.sprintf "stub%d" s)
            ~addr:(Addr.of_octets 10 s 0 1)
            ~as_id:(stub_as s) Node.Border_router
        in
        gw.Node.advertised <-
          [
            (stub_prefix ~stub:s, Node.Global);
            (Addr.host_prefix gw.Node.addr, Node.Global);
          ];
        let primary = Rng.int rng spec.transits in
        stub_primary.(s) <- primary;
        ignore
          (Network.connect net transit_gws.(primary) gw ~bandwidth:spec.stub_bw
             ~delay:spec.hop_delay ~queue_capacity:spec.queue_capacity);
        if Rng.bernoulli rng ~p:spec.multihoming_p then begin
          let secondary = (primary + 1 + Rng.int rng (spec.transits - 1))
                          mod spec.transits in
          stub_secondary.(s) <- Some secondary;
          ignore
            (Network.connect net transit_gws.(secondary) gw
               ~bandwidth:spec.stub_bw ~delay:spec.hop_delay
               ~queue_capacity:spec.queue_capacity)
        end;
        gw)
  in
  let hosts =
    Array.init spec.stubs (fun s ->
        Array.init spec.hosts_per_stub (fun k ->
            let h =
              Network.add_node net
                ~name:(Printf.sprintf "h%d_%d" s k)
                ~addr:(Addr.of_octets 10 s 0 (10 + k))
                ~as_id:(stub_as s) Node.Host
            in
            h.Node.advertised <- [ (Addr.host_prefix h.Node.addr, Node.As_local) ];
            ignore
              (Network.connect net stub_gws.(s) h ~bandwidth:spec.tail_bw
                 ~delay:spec.access_delay ~queue_capacity:spec.queue_capacity);
            h))
  in
  Network.compute_routes net;
  { net; transit_gws; stub_gws; hosts; stub_primary; stub_secondary }

let host t ~stub ~host = t.hosts.(stub).(host)

type deployed = {
  topo : t;
  stub_gateways : Gateway.t array;
  transit_gateways : Gateway.t array;
}

let deploy ?(policies = fun ~stub:_ -> Policy.Cooperative) ~config ~rng t =
  let stubs = Array.length t.stub_gws in
  (* A transit's cone: prefixes of every stub homed to it (either slot). *)
  let cone_of_transit i =
    let acc = ref [ Addr.host_prefix t.transit_gws.(i).Node.addr ] in
    for s = 0 to stubs - 1 do
      if t.stub_primary.(s) = i || t.stub_secondary.(s) = Some i then
        acc := stub_prefix ~stub:s :: !acc
    done;
    !acc
  in
  let transit_gateways =
    Array.mapi
      (fun i gw ->
        Gateway.create ~policy:Policy.Cooperative ~clients:(cone_of_transit i)
          ~config ~rng:(Rng.split rng) t.net gw)
      t.transit_gws
  in
  let stub_gateways =
    Array.mapi
      (fun s gw ->
        Gateway.create ~policy:(policies ~stub:s)
          ~upstream:t.transit_gws.(t.stub_primary.(s)).Node.addr
          ~clients:[ stub_prefix ~stub:s ]
          ~config ~rng:(Rng.split rng) t.net gw)
      t.stub_gws
  in
  { topo = t; stub_gateways; transit_gateways }

let attach_victim ?td d ~config ~stub ~host =
  Host_agent.Victim.create ?td
    ~gateway:d.topo.stub_gws.(stub).Node.addr
    ~config d.topo.net
    d.topo.hosts.(stub).(host)

let attach_attacker ?strategy d ~config ~stub ~host =
  Host_agent.Attacker.create ?strategy ~config d.topo.net
    d.topo.hosts.(stub).(host)
