(** Random AS-level topologies: transit mesh + multi-homed stubs.

    The chain and the strict hierarchy are clean but regular; AITF's
    correctness arguments should not depend on that. This builder produces
    randomised two-tier internets: [transits] transit ASes connected in a
    ring plus random extra peerings, and [stubs] edge ASes each homed to a
    random transit (and, with probability [multihoming_p], to a second
    one). Routing (shortest path over delays) handles the resulting path
    diversity; all randomness comes from the supplied {!Aitf_engine.Rng.t},
    so a seed fully determines the topology.

    Address plan: stub s is [10.s.0.0/16] (gateway [10.s.0.1], hosts
    [10.s.0.(10+k)]); transit i's gateway is [172.i.0.1]. *)

open Aitf_net
open Aitf_core

type spec = {
  transits : int;  (** >= 2 *)
  stubs : int;  (** 1..200 *)
  hosts_per_stub : int;
  multihoming_p : float;
  extra_peering_p : float;
      (** probability of each extra transit-transit link beyond the ring *)
  tail_bw : float;
  stub_bw : float;
  core_bw : float;
  access_delay : float;
  hop_delay : float;
  queue_capacity : int;
}

val default_spec : spec
(** 4 transits, 12 stubs, 2 hosts each, 30% multihoming, 30% extra
    peerings. *)

type t = {
  net : Network.t;
  transit_gws : Node.t array;
  stub_gws : Node.t array;
  hosts : Node.t array array;  (** [.(stub).(host)] *)
  stub_primary : int array;  (** index of each stub's primary transit *)
  stub_secondary : int option array;
}

val build : Aitf_engine.Sim.t -> Aitf_engine.Rng.t -> spec -> t

val host : t -> stub:int -> host:int -> Node.t
val stub_prefix : stub:int -> Addr.prefix

type deployed = {
  topo : t;
  stub_gateways : Gateway.t array;
  transit_gateways : Gateway.t array;
}

val deploy :
  ?policies:(stub:int -> Policy.gateway_policy) ->
  config:Config.t ->
  rng:Aitf_engine.Rng.t ->
  t ->
  deployed
(** AITF on every stub and transit gateway. Stub gateways escalate to their
    primary transit; transit gateways are top level. A transit's customer
    cone is the union of its homed stubs' prefixes. *)

val attach_victim :
  ?td:float ->
  deployed ->
  config:Config.t ->
  stub:int ->
  host:int ->
  Host_agent.Victim.t

val attach_attacker :
  ?strategy:Policy.attacker_response ->
  deployed ->
  config:Config.t ->
  stub:int ->
  host:int ->
  Host_agent.Attacker.t
