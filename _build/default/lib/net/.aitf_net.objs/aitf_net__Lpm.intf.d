lib/net/lpm.mli: Addr
