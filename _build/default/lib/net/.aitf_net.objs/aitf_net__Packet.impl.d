lib/net/packet.ml: Addr Format List
