lib/net/tap.ml: List Node Packet
