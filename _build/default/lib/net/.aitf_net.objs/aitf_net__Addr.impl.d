lib/net/addr.ml: Format Hashtbl Int Int32 Printf String
