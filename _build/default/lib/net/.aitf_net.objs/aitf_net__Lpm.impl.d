lib/net/lpm.ml: Addr Int32
