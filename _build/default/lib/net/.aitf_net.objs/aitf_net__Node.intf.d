lib/net/node.mli: Addr Format Hashtbl Link Lpm Packet
