lib/net/network.ml: Addr Aitf_engine Array Float Hashtbl Link List Lpm Node Option Packet Printf
