lib/net/tap.mli: Node Packet
