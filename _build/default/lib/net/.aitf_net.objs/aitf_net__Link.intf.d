lib/net/link.mli: Aitf_engine Packet
