lib/net/network.mli: Addr Aitf_engine Link Node Packet
