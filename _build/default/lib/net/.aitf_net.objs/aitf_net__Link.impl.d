lib/net/link.ml: Aitf_engine Aitf_obs Hashtbl Packet Printf Queue
