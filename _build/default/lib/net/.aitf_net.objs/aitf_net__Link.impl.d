lib/net/link.ml: Aitf_engine Hashtbl Packet Queue
