lib/net/node.ml: Addr Format Hashtbl Link List Lpm Packet
