lib/net/node.ml: Addr Aitf_obs Format Hashtbl Link List Lpm Packet Printf
