module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng

type discipline =
  | Drop_tail
  | Red of { min_th : int; max_th : int; max_p : float }

type t = {
  sim : Sim.t;
  name : string;
  bandwidth : float;
  delay : float;
  queue_capacity : int;
  mutable deliver : (Packet.t -> unit) option;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable is_up : bool;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped_packets : int;
  mutable dropped_bytes : int;
  discipline : discipline;
  rng : Rng.t;
  mutable avg_queue : float;  (* EWMA of queued bytes, for RED *)
  mutable early_drops : int;
}

let create ?(discipline = Drop_tail) sim ~name ~bandwidth ~delay
    ~queue_capacity =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  if queue_capacity < 0 then invalid_arg "Link.create: negative queue capacity";
  let t =
    {
      sim;
      name;
      bandwidth;
      delay;
      queue_capacity;
      deliver = None;
      queue = Queue.create ();
      queued_bytes = 0;
      busy = false;
      is_up = true;
      tx_packets = 0;
      tx_bytes = 0;
      dropped_packets = 0;
      dropped_bytes = 0;
      discipline;
      rng = Rng.create ~seed:(Hashtbl.hash name);
      avg_queue = 0.;
      early_drops = 0;
    }
  in
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric = Printf.sprintf "link.%s.%s" name metric in
      register_counter reg (p "tx_packets") ~unit_:"packets"
        ~help:"Packets fully serialised onto the wire" (fun () ->
          float_of_int t.tx_packets);
      register_counter reg (p "tx_bytes") ~unit_:"bytes"
        ~help:"Bytes fully serialised onto the wire" (fun () ->
          float_of_int t.tx_bytes);
      register_counter reg (p "dropped_packets") ~unit_:"packets"
        ~help:"Packets dropped (queue overflow, RED early drop, link down)"
        (fun () -> float_of_int t.dropped_packets);
      register_gauge reg (p "queued_bytes") ~unit_:"bytes"
        ~help:"Current queue occupancy" (fun () ->
          float_of_int t.queued_bytes);
      register_gauge reg (p "utilization") ~unit_:"ratio"
        ~help:"Cumulative bits sent over bandwidth x elapsed virtual time"
        (fun () ->
          let now = Sim.now t.sim in
          if now <= 0. then 0.
          else float_of_int (t.tx_bytes * 8) /. (t.bandwidth *. now)));
  t

let set_deliver t f = t.deliver <- Some f

let drop t (pkt : Packet.t) =
  t.dropped_packets <- t.dropped_packets + 1;
  t.dropped_bytes <- t.dropped_bytes + pkt.size

let rec start_transmission t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    t.queued_bytes <- t.queued_bytes - pkt.size;
    let serialization = float_of_int (pkt.size * 8) /. t.bandwidth in
    ignore
      (Sim.after t.sim serialization (fun () ->
           t.tx_packets <- t.tx_packets + 1;
           t.tx_bytes <- t.tx_bytes + pkt.size;
           ignore
             (Sim.after t.sim t.delay (fun () ->
                  match t.deliver with
                  | Some f when t.is_up -> f pkt
                  | Some _ | None -> drop t pkt));
           start_transmission t))

(* RED decision on enqueue: EWMA the backlog and drop probabilistically
   between the thresholds. *)
let red_rejects t =
  match t.discipline with
  | Drop_tail -> false
  | Red { min_th; max_th; max_p } ->
    let w = 0.02 in
    t.avg_queue <-
      ((1. -. w) *. t.avg_queue) +. (w *. float_of_int t.queued_bytes);
    if t.avg_queue <= float_of_int min_th then false
    else if t.avg_queue >= float_of_int max_th then true
    else
      let ramp =
        (t.avg_queue -. float_of_int min_th)
        /. float_of_int (max_th - min_th)
      in
      Rng.bernoulli t.rng ~p:(max_p *. ramp)

let send t pkt =
  if not t.is_up then drop t pkt
  else if t.busy && t.queued_bytes + pkt.Packet.size > t.queue_capacity then
    drop t pkt
  else if t.busy && red_rejects t then begin
    t.early_drops <- t.early_drops + 1;
    drop t pkt
  end
  else begin
    Queue.add pkt t.queue;
    t.queued_bytes <- t.queued_bytes + pkt.size;
    if not t.busy then start_transmission t
  end

let name t = t.name
let bandwidth t = t.bandwidth
let delay t = t.delay
let up t = t.is_up
let set_up t v = t.is_up <- v
let queued_bytes t = t.queued_bytes
let discipline t = t.discipline
let early_drops t = t.early_drops
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let dropped_packets t = t.dropped_packets
let dropped_bytes t = t.dropped_bytes

let utilization t ~now =
  if now <= 0. then 0.
  else float_of_int (t.tx_bytes * 8) /. (t.bandwidth *. now)
