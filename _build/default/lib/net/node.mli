(** Network nodes: hosts, interior routers and border routers.

    A node is a bag of state — address, autonomous-system membership, ports
    (outgoing links), a FIB, forwarding hooks — whose behaviour is driven by
    {!Network}. Protocol layers customise a node by pushing {e hooks}
    (consulted on every transit packet, e.g. AITF filter checks and
    route-record stamping) and by replacing [local_deliver] (traffic sinks,
    detectors, protocol message handlers).

    Only border routers and hosts speak AITF; the [kind] field lets
    deployment code find them. *)

type kind = Host | Router | Border_router

type scope =
  | Global  (** advertised to every node *)
  | As_local  (** advertised only within the node's own AS *)

type hook_verdict =
  | Continue  (** keep processing *)
  | Drop of string  (** discard, accounting under the given reason *)

type port = {
  link : Link.t;
  peer_id : int;
  mutable inter_as : bool;  (** crosses an AS boundary *)
}

type t = {
  id : int;
  name : string;
  addr : Addr.t;
  mutable as_id : int;
  kind : kind;
  fib : port Lpm.t;
  mutable ports : port list;
  mutable advertised : (Addr.prefix * scope) list;
  mutable hooks : (t -> Packet.t -> hook_verdict) list;
  mutable local_deliver : t -> Packet.t -> unit;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable forwarded_packets : int;
  mutable delivered_packets : int;
  drops : (string, int) Hashtbl.t;
}

val make : id:int -> name:string -> addr:Addr.t -> as_id:int -> kind -> t
(** A fresh node advertising its own /32 globally, delivering locally to a
    silent sink, with no hooks. *)

val add_hook : t -> (t -> Packet.t -> hook_verdict) -> unit
(** Prepend a forwarding hook; hooks run in reverse order of addition and
    the first [Drop] wins. *)

val port_to : t -> peer_id:int -> port option
(** The port whose link leads to [peer_id], if directly connected. *)

val count_drop : t -> string -> unit
val drop_count : t -> string -> int
val total_drops : t -> int

val is_border : t -> bool
val is_host : t -> bool

val pp : Format.formatter -> t -> unit
