type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable size : int }

let new_node () = { value = None; zero = None; one = None }

let create () = { root = new_node (); size = 0 }

let child node bit =
  if bit then node.one else node.zero

let ensure_child node bit =
  match child node bit with
  | Some c -> c
  | None ->
    let c = new_node () in
    if bit then node.one <- Some c else node.zero <- Some c;
    c

let find_node t (p : Addr.prefix) =
  let rec go node depth =
    if depth = p.len then Some node
    else
      match child node (Addr.bit p.base depth) with
      | None -> None
      | Some c -> go c (depth + 1)
  in
  go t.root 0

let insert t (p : Addr.prefix) v =
  let rec go node depth =
    if depth = p.len then begin
      if node.value = None then t.size <- t.size + 1;
      node.value <- Some v
    end
    else go (ensure_child node (Addr.bit p.base depth)) (depth + 1)
  in
  go t.root 0

let remove t p =
  match find_node t p with
  | None -> ()
  | Some node ->
    if node.value <> None then t.size <- t.size - 1;
    node.value <- None

let exact t p =
  match find_node t p with None -> None | Some node -> node.value

let lookup_prefix t addr =
  let rec go node depth best =
    let best =
      match node.value with
      | Some v -> Some (Addr.prefix addr depth, v)
      | None -> best
    in
    if depth = 32 then best
    else
      match child node (Addr.bit addr depth) with
      | None -> best
      | Some c -> go c (depth + 1) best
  in
  go t.root 0 None

let lookup t addr =
  match lookup_prefix t addr with None -> None | Some (_, v) -> Some v

let iter t f =
  let rec go node prefix_bits depth =
    (match node.value with
    | Some v -> f (Addr.prefix prefix_bits depth) v
    | None -> ());
    (match node.zero with
    | Some c -> go c prefix_bits (depth + 1)
    | None -> ());
    match node.one with
    | Some c ->
      let bit_val = Int32.shift_left 1l (31 - depth) in
      go c (Int32.logor prefix_bits bit_val) (depth + 1)
    | None -> ()
  in
  go t.root 0l 0

let size t = t.size

let clear t =
  t.root.value <- None;
  t.root.zero <- None;
  t.root.one <- None;
  t.size <- 0

let to_list t =
  let acc = ref [] in
  iter t (fun p v -> acc := (p, v) :: !acc);
  !acc
