(** IPv4-style 32-bit addresses and prefixes.

    Addresses are plain [int32]s in network order semantics (bit 31 is the
    most significant, first octet). Prefixes pair a base address with a mask
    length and are normalised on construction (host bits cleared), so two
    prefixes covering the same range are structurally equal. *)

type t = int32

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Each octet must be in
    [\[0, 255\]]. *)

val of_string : string -> t
(** Parse dotted-quad notation. @raise Invalid_argument on bad syntax. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val succ : t -> t
(** Next address in numeric order (wraps at the top of the space). *)

val add : t -> int -> t
(** [add a n] offsets [a] by [n] addresses. *)

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the most significant —
    the order in which an LPM trie consumes bits. [i] must be in [0, 31]. *)

type prefix = private { base : t; len : int }

val prefix : t -> int -> prefix
(** [prefix base len] normalises [base] to its first [len] bits.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val prefix_of_string : string -> prefix
(** Parse ["a.b.c.d/len"]. *)

val prefix_to_string : prefix -> string

val pp_prefix : Format.formatter -> prefix -> unit

val prefix_mem : prefix -> t -> bool
(** [prefix_mem p a] is [true] iff [a] falls inside [p]. *)

val prefix_compare : prefix -> prefix -> int

val host_prefix : t -> prefix
(** The /32 prefix containing exactly one address. *)
