type kind = Host | Router | Border_router
type scope = Global | As_local
type hook_verdict = Continue | Drop of string

type port = { link : Link.t; peer_id : int; mutable inter_as : bool }

type t = {
  id : int;
  name : string;
  addr : Addr.t;
  mutable as_id : int;
  kind : kind;
  fib : port Lpm.t;
  mutable ports : port list;
  mutable advertised : (Addr.prefix * scope) list;
  mutable hooks : (t -> Packet.t -> hook_verdict) list;
  mutable local_deliver : t -> Packet.t -> unit;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable forwarded_packets : int;
  mutable delivered_packets : int;
  drops : (string, int) Hashtbl.t;
}

let make ~id ~name ~addr ~as_id kind =
  let t =
    {
      id;
      name;
      addr;
      as_id;
      kind;
      fib = Lpm.create ();
      ports = [];
      advertised = [ (Addr.host_prefix addr, Global) ];
      hooks = [];
      local_deliver = (fun _ _ -> ());
      rx_packets = 0;
      rx_bytes = 0;
      forwarded_packets = 0;
      delivered_packets = 0;
      drops = Hashtbl.create 8;
    }
  in
  Aitf_obs.Metrics.if_attached (fun reg ->
      let open Aitf_obs.Metrics in
      let p metric = Printf.sprintf "node.%s.%s" name metric in
      register_counter reg (p "rx_packets") ~unit_:"packets"
        ~help:"Packets received on any port" (fun () ->
          float_of_int t.rx_packets);
      register_counter reg (p "rx_bytes") ~unit_:"bytes"
        ~help:"Bytes received on any port" (fun () -> float_of_int t.rx_bytes);
      register_counter reg (p "forwarded_packets") ~unit_:"packets"
        ~help:"Packets forwarded toward another node" (fun () ->
          float_of_int t.forwarded_packets);
      register_counter reg (p "delivered_packets") ~unit_:"packets"
        ~help:"Packets delivered to the local agent" (fun () ->
          float_of_int t.delivered_packets);
      register_counter reg (p "drops") ~unit_:"packets"
        ~help:"Packets dropped at this node, all reasons" (fun () ->
          float_of_int (Hashtbl.fold (fun _ n acc -> acc + n) t.drops 0)));
  t

let add_hook t h = t.hooks <- h :: t.hooks

let port_to t ~peer_id =
  List.find_opt (fun p -> p.peer_id = peer_id) t.ports

let count_drop t reason =
  let n = match Hashtbl.find_opt t.drops reason with None -> 0 | Some n -> n in
  Hashtbl.replace t.drops reason (n + 1)

let drop_count t reason =
  match Hashtbl.find_opt t.drops reason with None -> 0 | Some n -> n

let total_drops t = Hashtbl.fold (fun _ n acc -> acc + n) t.drops 0

let is_border t = t.kind = Border_router
let is_host t = t.kind = Host

let kind_string = function
  | Host -> "host"
  | Router -> "router"
  | Border_router -> "border"

let pp fmt t =
  Format.fprintf fmt "%s(%s, %a, AS%d)" t.name (kind_string t.kind) Addr.pp
    t.addr t.as_id
