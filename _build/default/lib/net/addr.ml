type t = int32

let compare = Int32.compare
let equal = Int32.equal
let hash (a : t) = Hashtbl.hash a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Addr.of_octets: octet out of range"
  in
  check a;
  check b;
  check c;
  check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    try of_octets (int_of_string a) (int_of_string b) (int_of_string c)
          (int_of_string d)
    with Failure _ -> invalid_arg ("Addr.of_string: " ^ s))
  | _ -> invalid_arg ("Addr.of_string: " ^ s)

let octet a i = Int32.to_int (Int32.logand (Int32.shift_right_logical a i) 0xFFl)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d" (octet a 24) (octet a 16) (octet a 8) (octet a 0)

let pp fmt a = Format.pp_print_string fmt (to_string a)

let succ a = Int32.add a 1l
let add a n = Int32.add a (Int32.of_int n)

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Addr.bit: index out of range";
  Int32.logand (Int32.shift_right_logical a (31 - i)) 1l = 1l

type prefix = { base : t; len : int }

let mask_of_len len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let prefix base len =
  if len < 0 || len > 32 then invalid_arg "Addr.prefix: bad length";
  { base = Int32.logand base (mask_of_len len); len }

let prefix_of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg ("Addr.prefix_of_string: " ^ s)
  | Some i ->
    let base = of_string (String.sub s 0 i) in
    let len =
      try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
      with Failure _ -> invalid_arg ("Addr.prefix_of_string: " ^ s)
    in
    prefix base len

let prefix_to_string p = Printf.sprintf "%s/%d" (to_string p.base) p.len

let pp_prefix fmt p = Format.pp_print_string fmt (prefix_to_string p)

let prefix_mem p a = Int32.equal (Int32.logand a (mask_of_len p.len)) p.base

let prefix_compare p q =
  let c = Int32.compare p.base q.base in
  if c <> 0 then c else Int.compare p.len q.len

let host_prefix a = { base = a; len = 32 }
