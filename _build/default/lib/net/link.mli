(** Unidirectional point-to-point links.

    A link models a transmitter with finite bandwidth, a drop-tail FIFO
    queue bounded in bytes, and a fixed propagation delay. Packets are
    serialised one at a time ([size * 8 / bandwidth] seconds each), then
    delivered [delay] seconds later to the callback installed by the
    network layer. Congestion — the heart of a DoS attack — emerges from the
    queue filling and dropping the excess.

    Bidirectional connectivity is two links (see {!Network.connect}). *)

type t

type discipline =
  | Drop_tail
  | Red of { min_th : int; max_th : int; max_p : float }
      (** Random Early Detection: below [min_th] bytes of average queue,
          enqueue; above [max_th], drop; in between, drop with probability
          ramping to [max_p]. The average is an EWMA of the instantaneous
          backlog. Early, randomised drops desynchronise adaptive sources
          and keep latency down — the victim-tail ablation (A4) measures
          the difference under flood. *)

val create :
  ?discipline:discipline ->
  Aitf_engine.Sim.t ->
  name:string ->
  bandwidth:float ->
  delay:float ->
  queue_capacity:int ->
  t
(** [bandwidth] in bits/s (positive), [delay] in seconds (non-negative),
    [queue_capacity] in bytes — the waiting room, excluding the packet in
    service. Default discipline is {!Drop_tail}. RED randomness is derived
    deterministically from the link name. *)

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Install the receive callback of the downstream node. Must be set before
    the first {!send}. *)

val send : t -> Packet.t -> unit
(** Enqueue a packet for transmission; drops it (and counts the drop) if the
    queue cannot hold it. *)

val name : t -> string
val bandwidth : t -> float
val delay : t -> float

val up : t -> bool
val set_up : t -> bool -> unit
(** A downed link silently discards everything sent to it (counts as drops);
    used to model disconnection. *)

val queued_bytes : t -> int

val discipline : t -> discipline

val early_drops : t -> int
(** Packets dropped by RED before the queue was actually full. *)

(** Cumulative statistics. *)

val tx_packets : t -> int
val tx_bytes : t -> int
val dropped_packets : t -> int
val dropped_bytes : t -> int

val utilization : t -> now:float -> float
(** Fraction of capacity used so far: bits sent / (bandwidth * now). *)
