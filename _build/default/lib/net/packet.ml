type payload = ..
type payload += Data of { flow_id : int; attack : bool }

type t = {
  id : int;
  src : Addr.t;
  true_src : Addr.t;
  dst : Addr.t;
  proto : int;
  sport : int;
  dport : int;
  size : int;
  mutable ttl : int;
  mutable route_record : Addr.t list;
  mutable ppm_mark : (Addr.t * Addr.t * int) option;
  mutable last_hop : Addr.t option;
  payload : payload;
}

let next_id = ref 0
let reset_ids () = next_id := 0

let route_record_limit = 16

let make ?spoofed_src ?(proto = 17) ?(sport = 0) ?(dport = 0) ?(ttl = 64) ~src
    ~dst ~size payload =
  let id = !next_id in
  incr next_id;
  let header_src = match spoofed_src with None -> src | Some s -> s in
  {
    id;
    src = header_src;
    true_src = src;
    dst;
    proto;
    sport;
    dport;
    size;
    ttl;
    route_record = [];
    ppm_mark = None;
    last_hop = None;
    payload;
  }

let is_control p = match p.payload with Data _ -> false | _ -> true

let record_route p addr =
  if List.length p.route_record < route_record_limit then
    p.route_record <- p.route_record @ [ addr ]

let payload_kind p =
  match p.payload with
  | Data { attack = true; _ } -> "data/attack"
  | Data _ -> "data"
  | _ -> "ctrl"

let pp fmt p =
  Format.fprintf fmt "#%d %a -> %a (%dB %s)" p.id Addr.pp p.src Addr.pp p.dst
    p.size (payload_kind p)
