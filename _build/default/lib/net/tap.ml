type t = {
  filter : Packet.t -> bool;
  limit : int;
  mutable rev_captured : Packet.t list;
  mutable count : int;
  mutable matched : int;
  mutable stopped : bool;
}

let attach ?(filter = fun _ -> true) ?(limit = 10_000) node =
  let t =
    { filter; limit; rev_captured = []; count = 0; matched = 0; stopped = false }
  in
  Node.add_hook node (fun _ pkt ->
      if (not t.stopped) && t.filter pkt then begin
        t.matched <- t.matched + 1;
        if t.count < t.limit then begin
          t.rev_captured <- pkt :: t.rev_captured;
          t.count <- t.count + 1
        end
      end;
      Node.Continue);
  t

let captured t = List.rev t.rev_captured
let count t = t.count
let matched t = t.matched

let clear t =
  t.rev_captured <- [];
  t.count <- 0

let stop t = t.stopped <- true
