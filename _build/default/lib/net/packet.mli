(** Simulated packets.

    The payload is an extensible variant: higher layers (the AITF protocol,
    the Pushback baseline) add their own message constructors without the
    network layer depending on them. Plain traffic uses {!Data}.

    Two source fields coexist: [src] is what the header claims (and may be
    spoofed); [true_src] is the simulator's ground truth, used only for
    measurement and never consulted by protocol code.

    [route_record] models in-packet traceback (TRIAD-style, [CG00]): each
    AITF border router that forwards the packet appends its address, oldest
    (closest to the attacker) first. [ppm_mark] carries a Savage-style
    probabilistic edge mark: [(edge_start, edge_end, distance)]. *)

type payload = ..

type payload +=
  | Data of { flow_id : int; attack : bool }
        (** Ordinary traffic. [attack] is scenario ground truth consumed by
            the victim's detector, standing in for whatever local
            classification identified the flow as undesired. *)

type t = {
  id : int;  (** unique per simulation, for digests and tracing *)
  src : Addr.t;  (** header source — may be spoofed *)
  true_src : Addr.t;  (** ground truth origin (measurement only) *)
  dst : Addr.t;
  proto : int;
  sport : int;  (** source port (0 when not meaningful) *)
  dport : int;  (** destination port *)
  size : int;  (** bytes on the wire *)
  mutable ttl : int;
  mutable route_record : Addr.t list;  (** attacker-side first *)
  mutable ppm_mark : (Addr.t * Addr.t * int) option;
  mutable last_hop : Addr.t option;
      (** address of the node that transmitted the packet last (set by the
          link layer); lets receivers attribute traffic to an upstream
          neighbor, as Pushback needs *)
  payload : payload;
}

val make :
  ?spoofed_src:Addr.t ->
  ?proto:int ->
  ?sport:int ->
  ?dport:int ->
  ?ttl:int ->
  src:Addr.t ->
  dst:Addr.t ->
  size:int ->
  payload ->
  t
(** Build a packet with a fresh [id]. [src] is the true origin; when
    [?spoofed_src] is given it becomes the header source while [src] is kept
    as [true_src]. Default [proto] is [17], ports [0], [ttl] [64]. *)

val is_control : t -> bool
(** [true] for anything that is not {!Data} — i.e. protocol messages. *)

val record_route : t -> Addr.t -> unit
(** Append a border-router address to the route record (bounded; further
    appends beyond the bound are dropped, mirroring limited header space). *)

val route_record_limit : int
(** Maximum number of recorded addresses (16). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering for traces: id, src -> dst, size and payload kind. *)

val reset_ids : unit -> unit
(** Reset the global id counter (between independent test runs). *)
