(** Packet capture for debugging and tests.

    A tap records (references to) transit packets flowing through a node's
    forwarding path, optionally filtered, up to a bound. Think of it as a
    tiny tcpdump: examples and tests use it to assert on what actually
    crossed a router without perturbing forwarding. *)

type t

val attach : ?filter:(Packet.t -> bool) -> ?limit:int -> Node.t -> t
(** Start capturing transit packets at [node] (local deliveries are not
    transit and are not seen). Default [filter] accepts everything; default
    [limit] is 10_000 packets, after which the tap stops recording (but
    keeps counting {!matched}). *)

val captured : t -> Packet.t list
(** Recorded packets, oldest first. *)

val count : t -> int
(** Number of recorded packets (≤ limit). *)

val matched : t -> int
(** Number of packets that matched the filter, recorded or not. *)

val clear : t -> unit
(** Drop the recording (counting continues). *)

val stop : t -> unit
(** Stop matching entirely; the hook becomes a no-op. *)
