(** Pushback: aggregate-based congestion control ([MBF+01]) — the baseline
    AITF is contrasted against.

    Each participating router periodically inspects its output links; when
    a link's drop fraction over the last interval exceeds a threshold, the
    router identifies the highest-volume destination aggregate (a /24 around
    the victim), installs a local rate limiter for it, and — if the
    aggregate keeps arriving well above the limit — recursively asks the
    upstream neighbors that contribute most to rate-limit it too, dividing
    the rate budget between them. Limiters expire unless re-triggered.

    The contrast with AITF that experiment E8 quantifies: pushback involves
    {e every} router on the attack path(s) hop by hop and rate-limits (the
    aggregate keeps part of its bandwidth — collateral damage for legit
    traffic inside it), while AITF involves four nodes per round and blocks
    exact flows. *)

open Aitf_net

type config = {
  check_interval : float;  (** congestion-inspection period (s) *)
  drop_threshold : float;  (** drop fraction that means "congested" *)
  limit_fraction : float;
      (** the aggregate is limited to this fraction of the congested link's
          bandwidth *)
  feedback_delay : float;  (** wait before propagating upstream (s) *)
  over_limit_factor : float;
      (** propagate when arrivals exceed [over_limit_factor * limit] *)
  limiter_timeout : float;  (** rate-limiter lifetime (s) *)
  max_depth : int;  (** recursion bound for upstream propagation *)
  aggregate_prefix_len : int;  (** aggregate granularity (default /24) *)
  max_contributors : int;  (** upstream neighbors asked per round *)
}

val default_config : config

type Packet.payload +=
  | Pushback_request of {
      aggregate : Addr.prefix;
      rate : float;  (** bytes/s allowed *)
      depth : int;
    }

type t
(** A deployment over some of a network's routers. *)

val deploy : ?config:config -> Network.t -> Node.t list -> t
(** Enable pushback on the given routers: installs accounting/limiting
    hooks and the periodic congestion check. *)

val config : t -> config

val limiters_installed : t -> int
(** Total limiters ever installed across the deployment. *)

val active_limiters : t -> int

val routers_limiting : t -> int
(** Routers currently holding at least one limiter — the "nodes involved"
    measure. *)

val messages_sent : t -> int
(** Pushback requests exchanged. *)

val limited_bytes : t -> float
(** Bytes dropped by rate limiters. *)
