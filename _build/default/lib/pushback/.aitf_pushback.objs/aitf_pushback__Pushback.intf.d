lib/pushback/pushback.mli: Addr Aitf_net Network Node Packet
