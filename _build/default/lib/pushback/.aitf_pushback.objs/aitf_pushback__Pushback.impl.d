lib/pushback/pushback.ml: Addr Aitf_engine Aitf_net Float Hashtbl Link List Network Node Packet
