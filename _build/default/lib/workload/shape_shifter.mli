(** A shape-shifting attack source — the adversary of the paper's
    introduction.

    "An attack can switch from one protocol to another, move between source
    networks as well as oscillate between on and off far faster than any
    human can respond." This source rotates its apparent identity — spoofed
    source address, source port, optionally protocol — every [shift_period]
    seconds, so each period presents the defense with a brand-new flow
    label. The underlying sending node and rate never change; only the
    header does. *)

open Aitf_net

type t

val create :
  ?pkt_size:int ->
  ?rotate_ports:bool ->
  ?rotate_proto:bool ->
  ?pool:int ->
  ?start:float ->
  ?stop:float ->
  ?gate:(Packet.t -> bool) ->
  shift_period:float ->
  flow_id:int ->
  rate:float ->
  dst:Addr.t ->
  spoof_base:Addr.t ->
  Network.t ->
  Node.t ->
  t
(** Rotate through [pool] (default 1000) spoofed sources starting at
    [spoof_base], advancing every [shift_period] seconds from [start].
    [rotate_ports] (default true) and [rotate_proto] (default false) also
    vary those header fields per shape. The [gate] is consulted per packet,
    like {!Traffic} sources. *)

val halt : t -> unit

val sent_packets : t -> int
val sent_bytes : t -> int

val shapes_used : t -> int
(** Distinct identities presented so far. *)

val current_label : t -> Aitf_filter.Flow_label.t
(** The exact host-pair label of the shape being sent right now. *)
