(** Synthetic filtering-request load.

    The resource experiments (E3–E5) need a precise, sustained request rate
    — R1 requests per second against a victim's gateway, R2 against an
    attacker's gateway or host — independent of traffic dynamics. The
    driver sends {!Aitf_core.Message.Filtering_request}s from a node at a
    constant rate, each built by a caller-supplied function of the request
    index (so every request can name a distinct flow), and can answer the
    3-way-handshake queries that come back so downstream gateways accept
    the requests as genuine. *)

open Aitf_net
open Aitf_core

type t

val create :
  ?answer_queries:bool ->
  ?start:float ->
  ?stop:float ->
  rate:float ->
  dst:Addr.t ->
  make_request:(int -> Message.request) ->
  Network.t ->
  Node.t ->
  t
(** Send [make_request i] (i = 0, 1, …) to [dst] every [1/rate] seconds
    from [start] (default 0) until [stop]. With [answer_queries] (default
    true) the node confirms every verification query it receives. *)

val sent : t -> int
val queries_answered : t -> int
val halt : t -> unit
