module Sim = Aitf_engine.Sim
open Aitf_net

type t = {
  net : Network.t;
  node : Node.t;
  dst : Addr.t;
  spoof_base : Addr.t;
  pool : int;
  shift_period : float;
  start : float;
  stop : float;
  rotate_ports : bool;
  rotate_proto : bool;
  pkt_size : int;
  flow_id : int;
  gap : float;
  gate : Packet.t -> bool;
  mutable max_shape : int;
  mutable halted : bool;
  mutable sent_packets : int;
  mutable sent_bytes : int;
}

let sim t = Network.sim t.net

let shape_index t =
  let elapsed = Float.max 0. (Sim.now (sim t) -. t.start) in
  int_of_float (elapsed /. t.shift_period)

let shape_fields t =
  let i = shape_index t in
  if i > t.max_shape then t.max_shape <- i;
  let src = Addr.add t.spoof_base (i mod t.pool) in
  let sport = if t.rotate_ports then 1024 + (i mod 50_000) else 0 in
  let proto = if t.rotate_proto then 1 + (i mod 250) else 17 in
  (src, sport, proto)

let emit t =
  let src, sport, proto = shape_fields t in
  let pkt =
    Packet.make ~spoofed_src:src ~proto ~sport ~src:t.node.Node.addr ~dst:t.dst
      ~size:t.pkt_size
      (Packet.Data { flow_id = t.flow_id; attack = true })
  in
  if t.gate pkt then begin
    t.sent_packets <- t.sent_packets + 1;
    t.sent_bytes <- t.sent_bytes + t.pkt_size;
    Network.originate t.net t.node pkt
  end

let rec schedule t delay =
  ignore
    (Sim.after (sim t) delay (fun () ->
         if (not t.halted) && Sim.now (sim t) < t.stop then begin
           emit t;
           schedule t t.gap
         end))

let create ?(pkt_size = 1000) ?(rotate_ports = true) ?(rotate_proto = false)
    ?(pool = 1000) ?(start = 0.) ?(stop = infinity) ?(gate = fun _ -> true)
    ~shift_period ~flow_id ~rate ~dst ~spoof_base net node =
  if shift_period <= 0. then
    invalid_arg "Shape_shifter.create: shift_period must be positive";
  if rate <= 0. then invalid_arg "Shape_shifter.create: rate must be positive";
  let t =
    {
      net;
      node;
      dst;
      spoof_base;
      pool;
      shift_period;
      start;
      stop;
      rotate_ports;
      rotate_proto;
      pkt_size;
      flow_id;
      gap = float_of_int (pkt_size * 8) /. rate;
      gate;
      max_shape = -1;
      halted = false;
      sent_packets = 0;
      sent_bytes = 0;
    }
  in
  let now = Sim.now (Network.sim net) in
  schedule t (Float.max 0. (start -. now));
  t

let halt t = t.halted <- true
let sent_packets t = t.sent_packets
let sent_bytes t = t.sent_bytes
let shapes_used t = t.max_shape + 1

let current_label t =
  let src, _, _ = shape_fields t in
  Aitf_filter.Flow_label.host_pair src t.dst
