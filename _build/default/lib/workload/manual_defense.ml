module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_filter

type t = {
  sim : Sim.t;
  filters : Filter_table.t;
  filter_duration : float;
  response_time : float;
  seen : (Flow_label.t, unit) Hashtbl.t;
  mutable installed : int;
  mutable pending : int;
}

let deploy ?(filter_capacity = 1000) ?(filter_duration = 1e9) ~response_time
    ~gateway ~victim net =
  let sim = Network.sim net in
  let t =
    {
      sim;
      filters = Filter_table.create sim ~capacity:filter_capacity;
      filter_duration;
      response_time;
      seen = Hashtbl.create 64;
      installed = 0;
      pending = 0;
    }
  in
  Node.add_hook gateway (fun _ pkt ->
      if Filter_table.blocks t.filters pkt then Node.Drop "manual-filter"
      else Node.Continue);
  let prev = victim.Node.local_deliver in
  victim.Node.local_deliver <-
    (fun node (pkt : Packet.t) ->
      (match pkt.Packet.payload with
      | Packet.Data { attack = true; _ } ->
        let label = Flow_label.host_pair pkt.Packet.src pkt.Packet.dst in
        if not (Hashtbl.mem t.seen label) then begin
          Hashtbl.replace t.seen label ();
          t.pending <- t.pending + 1;
          (* The operator gets to it eventually. *)
          ignore
            (Sim.after sim t.response_time (fun () ->
                 t.pending <- t.pending - 1;
                 match
                   Filter_table.install t.filters label
                     ~duration:t.filter_duration
                 with
                 | Ok _ -> t.installed <- t.installed + 1
                 | Error `Table_full -> ()))
        end
      | _ -> ());
      prev node pkt);
  t

let filters t = t.filters
let flows_seen t = Hashtbl.length t.seen
let filters_installed t = t.installed
let pending t = t.pending
