(** A minimal request/response application on top of the packet layer.

    Raw goodput understates what a DoS attack does to a service: a victim
    whose tail circuit drops 30% of packets does not lose 30% of its
    usefulness — it loses most of it, because transactions need {e all}
    their packets. This module models that: clients issue transactions
    (one request packet), the server answers each with [reply_packets]
    packets, and a transaction completes only when every reply arrived
    within the timeout (clients retry a configurable number of times).

    Metrics: completed / failed transactions and the latency distribution
    of completions — the victim-experience numbers used by the examples
    and the congestion benches. *)

open Aitf_net

type Packet.payload +=
  | App_request of { txn : int; client : Addr.t }
  | App_reply of { txn : int; seq : int; total : int }

module Server : sig
  type t

  val create : ?reply_packets:int -> ?reply_size:int -> Network.t -> Node.t -> t
  (** Attach to a host: answers every {!App_request} with [reply_packets]
      packets of [reply_size] bytes (defaults 4 × 1000 B). Chains to the
      node's previous delivery handler for other payloads (so it composes
      with an AITF victim agent on the same host). *)

  val requests_served : t -> int
end

module Client : sig
  type t

  val create :
    ?period:float ->
    ?timeout:float ->
    ?retries:int ->
    ?start:float ->
    ?stop:float ->
    server:Addr.t ->
    Network.t ->
    Node.t ->
    t
  (** Issue one transaction every [period] seconds (default 0.5): send a
      request, await all reply packets within [timeout] (default 2 s),
      retry up to [retries] times (default 1), then count the transaction
      as failed. *)

  val completed : t -> int
  val failed : t -> int
  val attempts : t -> int

  val latencies : t -> float list
  (** Completion latencies (first attempt to last reply packet), in
      completion order. *)

  val completion_rate : t -> float
  (** completed / (completed + failed); 1.0 when nothing finished yet. *)
end
