module Sim = Aitf_engine.Sim
module Table = Aitf_stats.Table
module Counter = Aitf_stats.Counter
open Aitf_net

let drops_summary (n : Node.t) =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) n.Node.drops [] in
  entries
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
  |> String.concat " "

let node_table net =
  let t =
    Table.create ~title:"nodes"
      ~columns:[ "node"; "kind"; "rx pkts"; "forwarded"; "delivered"; "drops" ]
  in
  List.iter
    (fun (n : Node.t) ->
      Table.add_row t
        [
          n.Node.name;
          (match n.Node.kind with
          | Node.Host -> "host"
          | Node.Router -> "router"
          | Node.Border_router -> "border");
          string_of_int n.Node.rx_packets;
          string_of_int n.Node.forwarded_packets;
          string_of_int n.Node.delivered_packets;
          drops_summary n;
        ])
    (Network.nodes net);
  t

let link_table ?(busy_only = true) net =
  let now = Sim.now (Network.sim net) in
  let t =
    Table.create ~title:"links"
      ~columns:
        [ "link"; "tx pkts"; "tx bytes"; "dropped"; "utilisation"; "state" ]
  in
  List.iter
    (fun l ->
      if (not busy_only) || Link.tx_packets l > 0 || Link.dropped_packets l > 0
      then
        Table.add_row t
          [
            Link.name l;
            string_of_int (Link.tx_packets l);
            string_of_int (Link.tx_bytes l);
            string_of_int (Link.dropped_packets l);
            Printf.sprintf "%.1f%%" (100. *. Link.utilization l ~now);
            (if Link.up l then "up" else "down");
          ])
    (Network.links net);
  t

let gateway_table gws =
  let t =
    Table.create ~title:"AITF gateways"
      ~columns:
        [ "gateway"; "filters (now/peak)"; "shadow peak"; "requests";
          "active flows"; "counters" ]
  in
  List.iter
    (fun gw ->
      let filters = Aitf_core.Gateway.filters gw in
      let counters =
        Counter.to_list (Aitf_core.Gateway.counters gw)
        |> List.filter (fun (_, v) -> v > 0)
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        |> String.concat " "
      in
      let active =
        Aitf_core.Gateway.active_flows gw
        |> List.map (fun (_, phase) -> phase)
        |> List.sort_uniq String.compare
        |> String.concat ","
      in
      Table.add_row t
        [
          (Aitf_core.Gateway.node gw).Node.name;
          Printf.sprintf "%d/%d"
            (Aitf_filter.Filter_table.occupancy filters)
            (Aitf_filter.Filter_table.peak_occupancy filters);
          string_of_int (Aitf_core.Gateway.shadow_peak gw);
          string_of_int (Aitf_core.Gateway.requests_received gw);
          (if active = "" then "-"
           else
             Printf.sprintf "%d (%s)"
               (List.length (Aitf_core.Gateway.active_flows gw))
               active);
          counters;
        ])
    gws;
  t

let metrics_table registry =
  let t =
    Table.create ~title:"metrics" ~columns:[ "metric"; "kind"; "value"; "unit" ]
  in
  let module M = Aitf_obs.Metrics in
  List.iter
    (fun (name, v) ->
      let unit_ = Option.value ~default:"" (M.unit_of registry name) in
      let kind, value =
        match v with
        | M.Counter v -> ("counter", Printf.sprintf "%.6g" v)
        | M.Gauge v -> ("gauge", Printf.sprintf "%.6g" v)
        | M.Histogram { count; sum; _ } ->
          ( "histogram",
            if count = 0 then "0 samples"
            else
              Printf.sprintf "%d samples, mean %.4g" count
                (sum /. float_of_int count) )
      in
      Table.add_row t [ name; kind; value; unit_ ])
    (M.snapshot registry);
  t
