module Sim = Aitf_engine.Sim
open Aitf_net

type Packet.payload +=
  | App_request of { txn : int; client : Addr.t }
  | App_reply of { txn : int; seq : int; total : int }

let request_size = 200

module Server = struct
  type t = {
    net : Network.t;
    node : Node.t;
    reply_packets : int;
    reply_size : int;
    mutable served : int;
  }

  let answer t ~client ~txn =
    t.served <- t.served + 1;
    for seq = 1 to t.reply_packets do
      Network.originate t.net t.node
        (Packet.make ~src:t.node.Node.addr ~dst:client ~size:t.reply_size
           (App_reply { txn; seq; total = t.reply_packets }))
    done

  let create ?(reply_packets = 4) ?(reply_size = 1000) net node =
    let t = { net; node; reply_packets; reply_size; served = 0 } in
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <-
      (fun n (pkt : Packet.t) ->
        match pkt.Packet.payload with
        | App_request { txn; client } -> answer t ~client ~txn
        | _ -> prev n pkt);
    t

  let requests_served t = t.served
end

module Client = struct
  type pending = {
    txn : int;
    started_at : float;
    mutable received : int;
    mutable expected : int;
    mutable tries_left : int;
    mutable timeout_event : Sim.handle option;
  }

  type t = {
    net : Network.t;
    node : Node.t;
    server : Addr.t;
    period : float;
    timeout : float;
    retries : int;
    stop : float;
    pending : (int, pending) Hashtbl.t;
    mutable next_txn : int;
    mutable completed : int;
    mutable failed : int;
    mutable attempts : int;
    mutable rev_latencies : float list;
  }

  let sim t = Network.sim t.net

  let send_request t p =
    t.attempts <- t.attempts + 1;
    Network.originate t.net t.node
      (Packet.make ~src:t.node.Node.addr ~dst:t.server ~size:request_size
         (App_request { txn = p.txn; client = t.node.Node.addr }))

  let rec arm_timeout t p =
    p.timeout_event <-
      Some
        (Sim.after (sim t) t.timeout (fun () ->
             if Hashtbl.mem t.pending p.txn then
               if p.tries_left > 0 then begin
                 p.tries_left <- p.tries_left - 1;
                 p.received <- 0;
                 send_request t p;
                 arm_timeout t p
               end
               else begin
                 Hashtbl.remove t.pending p.txn;
                 t.failed <- t.failed + 1
               end))

  let begin_txn t =
    let txn = t.next_txn in
    t.next_txn <- txn + 1;
    let p =
      {
        txn;
        started_at = Sim.now (sim t);
        received = 0;
        expected = max_int;
        tries_left = t.retries;
        timeout_event = None;
      }
    in
    Hashtbl.replace t.pending txn p;
    send_request t p;
    arm_timeout t p

  let on_reply t ~txn ~total =
    match Hashtbl.find_opt t.pending txn with
    | None -> () (* late packet of a finished/failed transaction *)
    | Some p ->
      p.expected <- total;
      p.received <- p.received + 1;
      if p.received >= p.expected then begin
        Hashtbl.remove t.pending txn;
        (match p.timeout_event with Some e -> Sim.cancel e | None -> ());
        t.completed <- t.completed + 1;
        t.rev_latencies <-
          (Sim.now (sim t) -. p.started_at) :: t.rev_latencies
      end

  let create ?(period = 0.5) ?(timeout = 2.0) ?(retries = 1) ?(start = 0.)
      ?(stop = infinity) ~server net node =
    if period <= 0. then invalid_arg "App.Client.create: period";
    let t =
      {
        net;
        node;
        server;
        period;
        timeout;
        retries;
        stop;
        pending = Hashtbl.create 16;
        next_txn = 0;
        completed = 0;
        failed = 0;
        attempts = 0;
        rev_latencies = [];
      }
    in
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <-
      (fun n (pkt : Packet.t) ->
        match pkt.Packet.payload with
        | App_reply { txn; total; _ } -> on_reply t ~txn ~total
        | _ -> prev n pkt);
    let rec tick at =
      if at < t.stop then
        ignore
          (Sim.at (Network.sim net) at (fun () ->
               begin_txn t;
               tick (at +. t.period)))
    in
    let now = Sim.now (Network.sim net) in
    tick (Float.max start now +. 1e-9);
    t

  let completed t = t.completed
  let failed t = t.failed
  let attempts t = t.attempts
  let latencies t = List.rev t.rev_latencies

  let completion_rate t =
    let total = t.completed + t.failed in
    if total = 0 then 1.0 else float_of_int t.completed /. float_of_int total
end
