lib/workload/shape_shifter.mli: Addr Aitf_filter Aitf_net Network Node Packet
