lib/workload/shape_shifter.ml: Addr Aitf_engine Aitf_filter Aitf_net Float Network Node Packet
