lib/workload/report.mli: Aitf_core Aitf_net Aitf_obs Aitf_stats Network
