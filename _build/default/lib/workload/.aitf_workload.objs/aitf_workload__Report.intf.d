lib/workload/report.mli: Aitf_core Aitf_net Aitf_stats Network
