lib/workload/scenarios.ml: Aitf_core Aitf_engine Aitf_net Aitf_obs Aitf_stats Aitf_topo Aitf_traceback Array Chain Config Gateway Hierarchy Host_agent List Node Option Packet Policy Traffic
