lib/workload/manual_defense.ml: Aitf_engine Aitf_filter Aitf_net Filter_table Flow_label Hashtbl Network Node Packet
