lib/workload/app.ml: Addr Aitf_engine Aitf_net Float Hashtbl List Network Node Packet
