lib/workload/manual_defense.mli: Aitf_filter Aitf_net Filter_table Network Node
