lib/workload/traffic.mli: Addr Aitf_engine Aitf_filter Aitf_net Flow_label Network Node Packet
