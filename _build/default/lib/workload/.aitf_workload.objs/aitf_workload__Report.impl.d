lib/workload/report.ml: Aitf_core Aitf_engine Aitf_filter Aitf_net Aitf_obs Aitf_stats Hashtbl Link List Network Node Option Printf String
