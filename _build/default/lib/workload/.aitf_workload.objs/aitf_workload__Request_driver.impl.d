lib/workload/request_driver.ml: Addr Aitf_core Aitf_engine Aitf_net Float Message Network Node Packet
