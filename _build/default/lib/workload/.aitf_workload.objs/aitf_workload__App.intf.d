lib/workload/app.mli: Addr Aitf_net Network Node Packet
