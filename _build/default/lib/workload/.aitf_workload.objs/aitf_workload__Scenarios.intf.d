lib/workload/scenarios.mli: Aitf_core Aitf_obs Aitf_stats Aitf_topo Chain Config Gateway Hierarchy Host_agent Policy
