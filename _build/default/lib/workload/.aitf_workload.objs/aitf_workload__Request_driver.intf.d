lib/workload/request_driver.mli: Addr Aitf_core Aitf_net Message Network Node
