lib/workload/traffic.ml: Addr Aitf_engine Aitf_filter Aitf_net Float Flow_label Network Node Option Packet
