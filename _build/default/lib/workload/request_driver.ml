module Sim = Aitf_engine.Sim
open Aitf_net
open Aitf_core

type t = {
  net : Network.t;
  node : Node.t;
  dst : Addr.t;
  rate : float;
  make_request : int -> Message.request;
  stop : float;
  mutable halted : bool;
  mutable sent : int;
  mutable queries_answered : int;
}

let send_message t ~dst payload =
  Network.originate t.net t.node
    (Message.packet ~src:t.node.Node.addr ~dst payload)

let rec tick t =
  let sim = Network.sim t.net in
  if (not t.halted) && Sim.now sim < t.stop then begin
    send_message t ~dst:t.dst
      (Message.Filtering_request (t.make_request t.sent));
    t.sent <- t.sent + 1;
    ignore (Sim.after sim (1. /. t.rate) (fun () -> tick t))
  end

let create ?(answer_queries = true) ?(start = 0.) ?(stop = infinity) ~rate ~dst
    ~make_request net node =
  if rate <= 0. then invalid_arg "Request_driver.create: rate must be positive";
  let t =
    {
      net;
      node;
      dst;
      rate;
      make_request;
      stop;
      halted = false;
      sent = 0;
      queries_answered = 0;
    }
  in
  if answer_queries then begin
    let prev = node.Node.local_deliver in
    node.Node.local_deliver <-
      (fun n (pkt : Packet.t) ->
        match pkt.payload with
        | Message.Verification_query { flow; nonce } ->
          t.queries_answered <- t.queries_answered + 1;
          send_message t ~dst:pkt.src (Message.Verification_reply { flow; nonce })
        | _ -> prev n pkt)
  end;
  let sim = Network.sim net in
  ignore (Sim.after sim (Float.max 0. (start -. Sim.now sim)) (fun () -> tick t));
  t

let sent t = t.sent
let queries_answered t = t.queries_answered
let halt t = t.halted <- true
