(** The manual-response baseline: a human operator with a phone.

    The paper's opening argument: "Currently, this propagation of filters
    is manual: the operator on each site determines the necessary filters
    and adds them to each router configuration … manual filter propagation
    becomes unacceptably slow or even infeasible." This module models that
    status quo so the claim can be measured: undesired flows are detected
    at the victim exactly as AITF would, but each new flow label costs
    [response_time] (minutes of a human diagnosing and configuring) before
    a filter appears at the victim's gateway — and the gateway's bounded
    filter table is all there is (no propagation towards the source, no
    expiry management beyond a fixed duration). *)

open Aitf_net
open Aitf_filter

type t

val deploy :
  ?filter_capacity:int ->
  ?filter_duration:float ->
  response_time:float ->
  gateway:Node.t ->
  victim:Node.t ->
  Network.t ->
  t
(** Watch the victim's incoming attack traffic and, [response_time] seconds
    after each previously-unseen flow label first appears, install a
    blocking filter at [gateway] (default capacity 1000, default duration
    forever-ish). Chains to the victim's previous delivery handler. *)

val filters : t -> Filter_table.t
val flows_seen : t -> int
val filters_installed : t -> int

val pending : t -> int
(** Flows detected but still waiting on the operator. *)
