(** Ingress/egress anti-spoofing filters.

    Section III-A argues AITF gives providers an economic incentive to
    deploy ingress filtering: "if a provider pro-actively prevents spoofed
    flows from exiting its network, it lowers the probability of an attack
    being launched from its own network, thus reducing the number of
    expected filtering requests it will later have to satisfy".

    Two directions on a border router, both defined by the AS's customer
    cone:
    - {e egress} filtering drops packets leaving the network whose claimed
      source is not inside the cone (the classic BCP 38 check);
    - {e ingress} filtering drops packets arriving from outside that claim
      a source inside the cone (nobody outside is us).

    Direction is inferred from the packet's last hop: a previous hop inside
    the cone means the packet is on its way out. *)

open Aitf_net

type t

val install :
  ?egress:bool -> ?ingress:bool -> Network.t -> Node.t ->
  cone:Addr.prefix list -> t
(** Attach the checks (both enabled by default) to a border router. Drops
    are accounted on the node under ["egress-spoof"] / ["ingress-spoof"]. *)

val egress_drops : t -> int
val ingress_drops : t -> int

val spoofed_exits_prevented : t -> int
(** Alias of {!egress_drops} — the quantity Section III-A's incentive
    argument is about. *)
