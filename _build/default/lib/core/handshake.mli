(** Nonce bookkeeping for the 3-way handshake (Section II-E).

    The attacker's gateway, before acting on a filtering request for a flow
    A → V, sends V a {!Message.Verification_query} carrying a fresh random
    nonce; only a {!Message.Verification_reply} echoing both the flow label
    and the nonce within the timeout counts as verification. An off-path
    forger never observes the nonce, so it cannot fabricate the reply.

    This module owns the pending-verification table; actually sending the
    query packet is the gateway's job (it gets the nonce from {!start}). *)

open Aitf_filter

type t

val create :
  Aitf_engine.Sim.t -> Aitf_engine.Rng.t -> timeout:float -> t

val start :
  t -> flow:Flow_label.t -> on_result:(bool -> unit) -> int64
(** Begin a verification; returns the nonce to put in the query.
    [on_result true] fires when a matching reply arrives in time,
    [on_result false] on timeout. Concurrent verifications of the same flow
    are independent (distinct nonces). *)

val handle_reply : t -> flow:Flow_label.t -> nonce:int64 -> unit
(** Feed a received reply; completes the matching pending verification, if
    any. Replies with unknown nonces or mismatched flow labels are counted
    and otherwise ignored. *)

val pending : t -> int
val started : t -> int
val verified : t -> int
val timed_out : t -> int
val bogus_replies : t -> int
