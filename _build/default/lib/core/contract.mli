(** Filtering contracts (§II-A) and their resource provisioning (§IV).

    "A filtering contract between networks A and B specifies: (i) the rate
    R1 at which A accepts filtering requests to block certain traffic to B;
    (ii) the rate R2 at which A can send filtering requests to get B to
    block certain traffic." This module makes the contract a first-class
    value: the rates, the router resources each side must provision to
    honor them (computed from the paper's formulas), and the installation
    of the corresponding policers on a gateway. *)

open Aitf_net

type t = {
  r1 : float;  (** client -> provider request rate (1/s) *)
  r1_burst : float;
  r2 : float;  (** provider -> client request rate (1/s) *)
  r2_burst : float;
}

val v : ?r1_burst:float -> ?r2_burst:float -> r1:float -> r2:float -> unit -> t
(** Bursts default to one second of the rate (at least 1). *)

val paper_default : t
(** The running example: R1 = 100/s, R2 = 1/s. *)

type provisioning = {
  protected_flows : int;  (** Nv = R1·T *)
  provider_filters : int;  (** nv = R1·Ttmp *)
  provider_shadow : int;  (** mv = R1·T *)
  client_side_filters : int;  (** na = R2·T, both at the client's gateway
                                  and at the client itself *)
}

val provision : t -> t_filter:float -> t_tmp:float -> provisioning
(** What honoring this contract costs each party (Section IV). *)

val apply_provider_side : Gateway.t -> client:Addr.t -> t -> unit
(** Install the contract's policers on the provider's gateway: the client's
    requests are admitted at R1, and requests towards the client are capped
    at R2. *)

val sufficient : t -> config:Config.t -> bool
(** Does a gateway configured with [config] have enough filter-table and
    shadow-cache capacity to honor this contract for one client? *)
