type gateway_policy = Cooperative | Unresponsive

type attacker_response = Complies | Ignores | On_off of { off_time : float }

let pp_gateway fmt = function
  | Cooperative -> Format.pp_print_string fmt "cooperative"
  | Unresponsive -> Format.pp_print_string fmt "unresponsive"

let pp_attacker fmt = function
  | Complies -> Format.pp_print_string fmt "complies"
  | Ignores -> Format.pp_print_string fmt "ignores"
  | On_off { off_time } -> Format.fprintf fmt "on-off(%gs)" off_time
