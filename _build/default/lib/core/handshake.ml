module Sim = Aitf_engine.Sim
module Rng = Aitf_engine.Rng
open Aitf_filter

type pending = {
  flow : Flow_label.t;
  on_result : bool -> unit;
  timeout_event : Sim.handle;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  timeout : float;
  table : (int64, pending) Hashtbl.t;
  mutable started : int;
  mutable verified : int;
  mutable timed_out : int;
  mutable bogus : int;
}

let create sim rng ~timeout =
  {
    sim;
    rng;
    timeout;
    table = Hashtbl.create 32;
    started = 0;
    verified = 0;
    timed_out = 0;
    bogus = 0;
  }

let rec fresh_nonce t =
  let n = Rng.nonce t.rng in
  if Hashtbl.mem t.table n then fresh_nonce t else n

let start t ~flow ~on_result =
  let nonce = fresh_nonce t in
  let timeout_event =
    Sim.after t.sim t.timeout (fun () ->
        if Hashtbl.mem t.table nonce then begin
          Hashtbl.remove t.table nonce;
          t.timed_out <- t.timed_out + 1;
          on_result false
        end)
  in
  Hashtbl.replace t.table nonce { flow; on_result; timeout_event };
  t.started <- t.started + 1;
  nonce

let handle_reply t ~flow ~nonce =
  match Hashtbl.find_opt t.table nonce with
  | Some p when Flow_label.equal p.flow flow ->
    Hashtbl.remove t.table nonce;
    Sim.cancel p.timeout_event;
    t.verified <- t.verified + 1;
    p.on_result true
  | Some _ | None -> t.bogus <- t.bogus + 1

let pending t = Hashtbl.length t.table
let started t = t.started
let verified t = t.verified
let timed_out t = t.timed_out
let bogus_replies t = t.bogus
