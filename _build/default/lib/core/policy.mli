(** Cooperation policies.

    AITF "does not rely on the cooperation" of the attacker's side: the
    mechanism must behave correctly whatever these knobs are set to.
    Experiments sweep them to measure the cost of non-cooperation
    (Section IV-A.1's n parameter). *)

type gateway_policy =
  | Cooperative  (** normal behaviour *)
  | Unresponsive
      (** ignores requests addressed to it in the attacker's-gateway role;
          never filters, never propagates — the "non-cooperating AITF node"
          of the analysis *)

type attacker_response =
  | Complies  (** installs its own outbound filter for the requested T *)
  | Ignores  (** keeps sending; counts on its gateway being complicit *)
  | On_off of { off_time : float }
      (** the on-off game of Section II-B: stops just long enough for the
          victim's gateway to drop its temporary filter, then resumes *)

val pp_gateway : Format.formatter -> gateway_policy -> unit
val pp_attacker : Format.formatter -> attacker_response -> unit
