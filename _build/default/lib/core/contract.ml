module Formulas = Aitf_model.Formulas

type t = { r1 : float; r1_burst : float; r2 : float; r2_burst : float }

let v ?r1_burst ?r2_burst ~r1 ~r2 () =
  if r1 <= 0. || r2 <= 0. then invalid_arg "Contract.v: rates must be positive";
  let default_burst rate = Float.max rate 1. in
  {
    r1;
    r1_burst = Option.value ~default:(default_burst r1) r1_burst;
    r2;
    r2_burst = Option.value ~default:(default_burst r2) r2_burst;
  }

let paper_default = v ~r1:100. ~r2:1. ()

type provisioning = {
  protected_flows : int;
  provider_filters : int;
  provider_shadow : int;
  client_side_filters : int;
}

let provision t ~t_filter ~t_tmp =
  {
    protected_flows = Formulas.protected_flows ~r1:t.r1 ~t_filter;
    provider_filters = Formulas.victim_gateway_filters ~r1:t.r1 ~t_tmp;
    provider_shadow = Formulas.victim_gateway_shadow ~r1:t.r1 ~t_filter;
    client_side_filters = Formulas.attacker_gateway_filters ~r2:t.r2 ~t_filter;
  }

let apply_provider_side gw ~client t =
  Gateway.set_contract gw ~peer:client ~rate:t.r1 ~burst:t.r1_burst;
  Gateway.set_client_contract gw ~client ~rate:t.r2 ~burst:t.r2_burst

let sufficient t ~config =
  let p =
    provision t ~t_filter:config.Config.t_filter ~t_tmp:config.Config.t_tmp
  in
  p.provider_filters <= config.Config.filter_capacity
  && p.provider_shadow <= config.Config.shadow_capacity
  && p.client_side_filters <= config.Config.filter_capacity
