lib/core/legacy.mli: Addr Aitf_filter Aitf_net Flow_label Gateway Network
