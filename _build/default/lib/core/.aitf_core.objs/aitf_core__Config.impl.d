lib/core/config.ml: Aitf_traceback Float
