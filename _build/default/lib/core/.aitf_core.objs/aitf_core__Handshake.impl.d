lib/core/handshake.ml: Aitf_engine Aitf_filter Flow_label Hashtbl
