lib/core/ingress.ml: Aitf_net List Lpm Node Option Packet
