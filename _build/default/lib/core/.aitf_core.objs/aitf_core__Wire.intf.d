lib/core/wire.mli: Aitf_net Bytes Format Packet
