lib/core/detection.mli: Aitf_engine Aitf_filter Aitf_net Flow_label Packet
