lib/core/message.ml: Addr Aitf_filter Aitf_net Flow_label Format Packet
