lib/core/ingress.mli: Addr Aitf_net Network Node
