lib/core/contract.ml: Aitf_model Config Float Gateway Option
