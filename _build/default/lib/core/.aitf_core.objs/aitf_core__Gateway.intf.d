lib/core/gateway.mli: Addr Aitf_engine Aitf_filter Aitf_net Aitf_stats Config Filter_table Flow_label Network Node Policy
