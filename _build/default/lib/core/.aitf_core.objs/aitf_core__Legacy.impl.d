lib/core/legacy.ml: Aitf_engine Aitf_filter Aitf_net Config Detection Flow_label Gateway Hashtbl List Lpm Message Network Node Option Packet Token_bucket
