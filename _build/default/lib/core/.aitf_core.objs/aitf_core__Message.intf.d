lib/core/message.mli: Addr Aitf_filter Aitf_net Flow_label Format Packet
