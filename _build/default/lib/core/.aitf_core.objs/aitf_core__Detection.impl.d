lib/core/detection.ml: Aitf_engine Aitf_filter Aitf_net Flow_label Hashtbl Packet
