lib/core/wire.ml: Addr Aitf_filter Aitf_net Bytes Flow_label Format Int64 List Message
