lib/core/handshake.mli: Aitf_engine Aitf_filter Flow_label
