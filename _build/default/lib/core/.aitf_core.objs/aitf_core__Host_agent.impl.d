lib/core/host_agent.ml: Addr Aitf_engine Aitf_filter Aitf_net Aitf_stats Aitf_traceback Config Detection Filter_table Flow_label Hashtbl List Message Network Node Option Packet Policy Token_bucket
