lib/core/host_agent.mli: Addr Aitf_filter Aitf_net Aitf_stats Aitf_traceback Config Filter_table Flow_label Network Node Packet Policy
