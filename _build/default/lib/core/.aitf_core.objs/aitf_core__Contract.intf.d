lib/core/contract.mli: Addr Aitf_net Config Gateway
