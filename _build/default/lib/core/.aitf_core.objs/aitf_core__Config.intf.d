lib/core/config.mli: Aitf_traceback
