(** Binary wire format for AITF messages.

    The simulator moves OCaml values, but a deployable implementation needs
    a concrete octet format; this module defines one and the test suite
    round-trips it (including adversarial truncation/corruption cases, since
    gateways parse these messages from untrusted peers).

    Layout (all integers big-endian):

    {v
    octet 0      version (currently 1)
    octet 1      message type: 1 request / 2 query / 3 reply
    flow label:
      sel        1 tag octet (0 any | 1 host | 2 net) then 4 addr octets
                 (host) or 4 + 1 prefix-length octets (net), for src then dst
      quals      1 bitmap octet (bit0 proto, bit1 sport, bit2 dport)
                 followed by the present values (1, 2, 2 octets)
    request body:
      target     1 octet (1 victim-gw | 2 attacker-gw | 3 attacker)
      duration   8 octets (IEEE double bits)
      hops       1 octet
      requestor  4 octets
      path       1 length octet + 4 octets per entry
    query/reply body:
      nonce      8 octets
    v} *)

open Aitf_net

type error =
  | Truncated  (** buffer too short for the advertised structure *)
  | Bad_version of int
  | Bad_tag of string * int  (** (field, value) *)

val pp_error : Format.formatter -> error -> unit

val encode : Packet.payload -> (Bytes.t, string) result
(** Serialise an AITF payload. [Error] for non-AITF payloads. *)

val decode : Bytes.t -> (Packet.payload, error) result
(** Parse a buffer produced by {!encode} (or by an adversary). Never
    raises. *)

val encoded_size : Packet.payload -> int option
(** Size {!encode} would produce, without allocating. [None] for non-AITF
    payloads. *)
