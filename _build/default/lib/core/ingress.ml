open Aitf_net

type t = {
  node : Node.t;
  cone : unit Lpm.t;
  check_egress : bool;
  check_ingress : bool;
  mutable egress_drops : int;
  mutable ingress_drops : int;
}

let in_cone t a = Option.is_some (Lpm.lookup t.cone a)

let hook t (_node : Node.t) (pkt : Packet.t) =
  let from_inside =
    match pkt.last_hop with
    | Some hop -> in_cone t hop
    | None -> true (* locally originated counts as inside *)
  in
  let src_inside = in_cone t pkt.src in
  if t.check_egress && from_inside && not src_inside then begin
    t.egress_drops <- t.egress_drops + 1;
    Node.Drop "egress-spoof"
  end
  else if t.check_ingress && (not from_inside) && src_inside then begin
    t.ingress_drops <- t.ingress_drops + 1;
    Node.Drop "ingress-spoof"
  end
  else Node.Continue

let install ?(egress = true) ?(ingress = true) _net node ~cone =
  let cone_lpm = Lpm.create () in
  List.iter (fun p -> Lpm.insert cone_lpm p ()) cone;
  let t =
    {
      node;
      cone = cone_lpm;
      check_egress = egress;
      check_ingress = ingress;
      egress_drops = 0;
      ingress_drops = 0;
    }
  in
  Node.add_hook node (hook t);
  t

let egress_drops t = t.egress_drops
let ingress_drops t = t.ingress_drops
let spoofed_exits_prevented = egress_drops
