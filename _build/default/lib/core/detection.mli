(** Victim-side attack detection.

    The paper "starts from the point where the node has identified the
    undesired flows" and models detection as a delay: the first appearance
    of an undesired flow costs Td to detect, while a {e reappearing} flow is
    recognised "as fast as matching a received packet header to a logged
    undesired flow label — i.e. insignificant".

    This module implements exactly that: a per-flow state machine with a Td
    timer on first sight, instant reporting on reappearance, and a
    configurable damper ([min_report_gap]) so a still-leaking flow does not
    burn the victim's whole request budget. *)

open Aitf_net
open Aitf_filter

type t

val create :
  Aitf_engine.Sim.t ->
  td:float ->
  min_report_gap:float ->
  on_detect:(Flow_label.t -> Packet.t -> unit) ->
  t
(** [on_detect] fires with the flow's label and the packet that triggered
    the (re)detection. *)

val observe : t -> Packet.t -> unit
(** Feed every received packet the victim considers undesired. *)

val known : t -> Flow_label.t -> bool
(** Has this flow ever been detected? *)

val flows_seen : t -> int
val detections : t -> int
(** Total [on_detect] firings, re-detections included. *)
