(** Protecting legacy (non-AITF) hosts.

    An AITF network "has a filtering contract with each of its end-hosts" —
    but a deployment will always contain hosts that speak no AITF. This
    module lets their gateway stand in for them:

    - it watches transit traffic towards the protected prefixes and runs
      the same detection a victim host would (scenario ground truth plus a
      Td delay, instant re-detection of logged labels);
    - it originates the filtering requests itself, self-policed to the
      contract rate;
    - being on the path, it legitimately answers the 3-way-handshake
      queries that attacker-side gateways address to the silent legacy
      victim (Section II-E's verification only proves the confirmer is
      on-path, which the gateway is), and consumes those queries so they
      never confuse the host.

    Attach it to the same border router as the {!Gateway}. *)

open Aitf_net
open Aitf_filter

type t

val attach :
  ?td:float ->
  protect:Addr.prefix list ->
  gateway:Gateway.t ->
  Network.t ->
  t
(** Watch traffic through the gateway's node towards [protect] and defend
    it. [td] is the first-detection delay (default 0.1 s). *)

val requests_sent : t -> int
val queries_answered : t -> int
val flows_detected : t -> int

val protects : t -> Addr.t -> bool
(** Is this destination covered? *)

val watching : t -> Flow_label.t -> bool
(** Is this flow currently in the protector's outstanding-request set? *)
