lib/obs/json.mli: Format
