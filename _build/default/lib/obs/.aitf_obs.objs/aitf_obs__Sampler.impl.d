lib/obs/sampler.ml: Aitf_engine Aitf_stats Hashtbl List Metrics String Sys
