lib/obs/sampler.mli: Aitf_engine Aitf_stats Metrics
