lib/obs/report.ml: Aitf_stats Buffer Fun Json List Metrics Option Printf Result
