lib/obs/report.mli: Aitf_stats Json Metrics
