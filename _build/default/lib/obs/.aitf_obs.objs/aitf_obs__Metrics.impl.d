lib/obs/metrics.ml: Aitf_stats Hashtbl List Option Printf String
