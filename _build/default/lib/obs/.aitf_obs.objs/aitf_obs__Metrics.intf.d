lib/obs/metrics.mli:
