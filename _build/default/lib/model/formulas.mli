(** The paper's closed-form performance model (Section IV).

    Each function is one formula, with the paper's variable names; the
    benches print these next to the simulator's measurements.

    Worked examples from the paper (reproduced in the tests):
    - r ≈ 0.00083 for n = 1, Td ≈ 0, Tr = 50 ms, T = 60 s;
    - Nv = 6000 for R1 = 100/s, T = 60 s;
    - nv = 60 for R1 = 100/s, Ttmp = 600 ms;
    - na = 60 for R2 = 1/s, T = 60 s. *)

val effective_bandwidth_ratio :
  n:int -> td:float -> tr:float -> t_filter:float -> float
(** r ≈ n (Td + Tr) / T — the fraction of an undesired flow's bandwidth the
    victim still experiences, with [n] non-cooperating AITF nodes on the
    attack path (IV-A.1). *)

val effective_bandwidth :
  n:int -> td:float -> tr:float -> t_filter:float -> bandwidth:float -> float
(** Be ≈ B · r. *)

val protected_flows : r1:float -> t_filter:float -> int
(** Nv = R1 · T — simultaneous undesired flows a client is protected
    against (IV-A.2). *)

val victim_gateway_filters : r1:float -> t_tmp:float -> int
(** nv = R1 · Ttmp — hardware filters the victim's gateway needs (IV-B). *)

val victim_gateway_shadow : r1:float -> t_filter:float -> int
(** mv = R1 · T — shadow-cache entries the victim's gateway needs (IV-B). *)

val attacker_gateway_filters : r2:float -> t_filter:float -> int
(** na = R2 · T — filters the attacker's gateway needs (IV-C); the same
    bound applies to the compliant attacker itself (IV-D). *)

val min_t_tmp : traceback_time:float -> handshake_time:float -> float
(** Lower bound on Ttmp: it must cover traceback plus the 3-way handshake
    (IV-B). *)
