lib/model/formulas.ml: Printf
