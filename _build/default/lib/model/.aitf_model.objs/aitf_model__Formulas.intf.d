lib/model/formulas.mli:
