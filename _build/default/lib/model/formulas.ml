let effective_bandwidth_ratio ~n ~td ~tr ~t_filter =
  if t_filter <= 0. then invalid_arg "Formulas: T must be positive";
  float_of_int n *. (td +. tr) /. t_filter

let effective_bandwidth ~n ~td ~tr ~t_filter ~bandwidth =
  bandwidth *. effective_bandwidth_ratio ~n ~td ~tr ~t_filter

let check_positive name v =
  if v <= 0. then invalid_arg (Printf.sprintf "Formulas: %s must be positive" name)

let protected_flows ~r1 ~t_filter =
  check_positive "R1" r1;
  check_positive "T" t_filter;
  int_of_float (r1 *. t_filter)

let victim_gateway_filters ~r1 ~t_tmp =
  check_positive "R1" r1;
  check_positive "Ttmp" t_tmp;
  int_of_float (ceil (r1 *. t_tmp))

let victim_gateway_shadow ~r1 ~t_filter =
  check_positive "R1" r1;
  check_positive "T" t_filter;
  int_of_float (r1 *. t_filter)

let attacker_gateway_filters ~r2 ~t_filter =
  check_positive "R2" r2;
  check_positive "T" t_filter;
  int_of_float (r2 *. t_filter)

let min_t_tmp ~traceback_time ~handshake_time = traceback_time +. handshake_time
