lib/stats/histogram.ml: Array Buffer Int List Printf String
