lib/stats/series.mli:
