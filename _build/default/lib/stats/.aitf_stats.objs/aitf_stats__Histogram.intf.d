lib/stats/histogram.mli:
