lib/stats/rate_meter.ml: Queue
