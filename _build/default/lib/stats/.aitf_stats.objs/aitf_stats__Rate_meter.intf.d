lib/stats/rate_meter.mli:
