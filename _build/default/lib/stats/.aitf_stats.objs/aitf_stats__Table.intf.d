lib/stats/table.mli:
