type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 16

let incr ?(by = 1) t name =
  let v = Option.value ~default:0 (Hashtbl.find_opt t name) in
  Hashtbl.replace t name (v + by)

let get t name = Option.value ~default:0 (Hashtbl.find_opt t name)
let set t name v = Hashtbl.replace t name v

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset = Hashtbl.reset

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s=%d@ " k v) (to_list t)
