(** ASCII tables and CSV output for experiment reports.

    The bench harness prints one table per paper table/figure; this module
    owns the formatting so every experiment renders consistently. *)

type t

val create : title:string -> columns:string list -> t

val title : t -> string
val columns : t -> string list

val add_row : t -> string list -> unit
(** Must have as many cells as there are columns.
    @raise Invalid_argument otherwise. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** One-cell-per-'|' convenience: the formatted string is split on ['|']. *)

val rows : t -> string list list

val render : t -> string
(** Aligned, boxed ASCII rendering including the title. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Header row plus data rows, comma-separated; cells containing commas or
    quotes are quoted. *)

(** Cell formatting helpers. *)

val cell_float : ?digits:int -> float -> string
val cell_int : int -> string
val cell_bool : bool -> string
val cell_ratio : ?digits:int -> float -> float -> string
(** ["a/b (x%)"]. *)
