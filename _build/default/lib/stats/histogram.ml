type t = { bounds : float array; counts : int array; mutable total : int }

let create ~bounds =
  if bounds = [] then invalid_arg "Histogram.create: empty bounds";
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  if not (ascending bounds) then
    invalid_arg "Histogram.create: bounds must be strictly ascending";
  let bounds = Array.of_list bounds in
  (* one extra slot: overflow *)
  { bounds; counts = Array.make (Array.length bounds + 1) 0; total = 0 }

let log_bounds ~lo ~hi ~per_decade =
  if lo <= 0. || hi <= lo || per_decade <= 0 then
    invalid_arg "Histogram.log_bounds";
  let step = 10. ** (1. /. float_of_int per_decade) in
  let rec go acc v = if v >= hi *. step then List.rev acc else go (v :: acc) (v *. step) in
  go [] lo

let add t v =
  t.total <- t.total + 1;
  let n = Array.length t.bounds in
  let rec find i = if i >= n || v <= t.bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  t.counts.(i) <- t.counts.(i) + 1

let count t = t.total

let buckets t =
  let n = Array.length t.bounds in
  List.init (n + 1) (fun i ->
      ((if i < n then t.bounds.(i) else infinity), t.counts.(i)))

let render ?(width = 40) t =
  let max_count = Array.fold_left Int.max 1 t.counts in
  let buf = Buffer.create 256 in
  List.iter
    (fun (bound, c) ->
      if c > 0 then begin
        let bar = c * width / max_count in
        Buffer.add_string buf
          (Printf.sprintf "%10s | %-*s %d\n"
             (if bound = infinity then "inf" else Printf.sprintf "%.4g" bound)
             width
             (String.make (Int.max 1 bar) '#')
             c)
      end)
    (buckets t);
  Buffer.contents buf
