(** Fixed-bucket histograms with an ASCII rendering.

    Used for latency distributions in the transaction benches. Buckets are
    supplied as ascending upper bounds; samples above the last bound land in
    a final overflow bucket. *)

type t

val create : bounds:float list -> t
(** @raise Invalid_argument if [bounds] is empty or not strictly
    ascending. *)

val log_bounds : lo:float -> hi:float -> per_decade:int -> float list
(** Logarithmically spaced bounds from [lo] to at least [hi], with
    [per_decade] buckets per decade — the usual latency scale. *)

val add : t -> float -> unit

val count : t -> int
(** Total samples. *)

val buckets : t -> (float * int) list
(** (upper bound, samples) pairs; the final pair has bound [infinity]. *)

val render : ?width:int -> t -> string
(** Multi-line ASCII bar chart, one row per non-empty bucket. *)
