type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let title t = t.title
let columns t = t.columns

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns (%s)"
         (List.length cells) (List.length t.columns) t.title);
  t.rev_rows <- cells :: t.rev_rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let rows t = List.rev t.rev_rows

let render t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- Int.max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  let pad cell width =
    cell ^ String.make (width - String.length cell) ' '
  in
  let render_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad cell widths.(i));
        Buffer.add_string buf " | ")
      row;
    (* trim the trailing space *)
    let len = Buffer.length buf in
    Buffer.truncate buf (len - 1);
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * ncols) + 1
  in
  let rule = String.make total_width '-' ^ "\n" in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  Buffer.add_string buf rule;
  render_row t.columns;
  Buffer.add_string buf rule;
  List.iter render_row (rows t);
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.columns :: rows t)) ^ "\n"

let cell_float ?(digits = 4) v = Printf.sprintf "%.*g" digits v
let cell_int = string_of_int
let cell_bool b = if b then "yes" else "no"

let cell_ratio ?(digits = 1) a b =
  if b = 0. then Printf.sprintf "%.0f/0" a
  else Printf.sprintf "%.0f/%.0f (%.*f%%)" a b digits (100. *. a /. b)
