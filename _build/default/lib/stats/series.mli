(** Time series accumulation.

    Append (time, value) points during a run, then read them back for
    figures: raw, resampled onto a regular grid, or reduced. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

val add : t -> time:float -> float -> unit
(** Times must be non-decreasing. *)

val length : t -> int
val points : t -> (float * float) list
(** In insertion order. *)

val last : t -> (float * float) option

val resample : t -> step:float -> until:float -> (float * float) list
(** Sample-and-hold onto a regular grid from 0 to [until]: each grid point
    carries the most recent value at or before it (0 before the first
    point). *)

val max_value : t -> float
(** Largest value (0 for an empty series). *)

val mean_value : t -> float
(** Plain average of the values (0 for an empty series). *)
