type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let zero =
  { n = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty input";
  if q < 0. || q > 1. then invalid_arg "Summary.percentile: q outside [0,1]";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))

let of_array a =
  let n = Array.length a in
  if n = 0 then zero
  else begin
    let sorted = Array.copy a in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0. a in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a
      /. float_of_int n
    in
    {
      n;
      mean;
      stddev = sqrt var;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.5;
      p90 = percentile sorted 0.9;
      p99 = percentile sorted 0.99;
    }
  end

let of_list l = of_array (Array.of_list l)

let pp fmt t =
  Format.fprintf fmt
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g" t.n
    t.mean t.stddev t.min t.p50 t.p90 t.p99 t.max
