type t = { name : string; mutable rev_points : (float * float) list; mutable n : int }

let create ?(name = "") () = { name; rev_points = []; n = 0 }

let name t = t.name

let add t ~time v =
  (match t.rev_points with
  | (last, _) :: _ when time < last ->
    invalid_arg "Series.add: time went backwards"
  | _ -> ());
  t.rev_points <- (time, v) :: t.rev_points;
  t.n <- t.n + 1

let length t = t.n
let points t = List.rev t.rev_points
let last t = match t.rev_points with [] -> None | p :: _ -> Some p

let resample t ~step ~until =
  if step <= 0. then invalid_arg "Series.resample: step must be positive";
  let pts = points t in
  let rec go grid pts current acc =
    if grid > until +. (step /. 2.) then List.rev acc
    else
      match pts with
      | (time, v) :: rest when time <= grid -> go grid rest v acc
      | _ -> go (grid +. step) pts current ((grid, current) :: acc)
  in
  go 0. pts 0. []

let max_value t =
  List.fold_left (fun acc (_, v) -> Float.max acc v) 0. t.rev_points

let mean_value t =
  if t.n = 0 then 0.
  else List.fold_left (fun acc (_, v) -> acc +. v) 0. t.rev_points /. float_of_int t.n
