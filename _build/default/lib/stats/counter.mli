(** Named counter groups.

    A tiny instrumentation primitive: a group of integer counters addressed
    by name, created on first touch. Protocol components expose one group
    each; reports iterate them. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
val set : t -> string -> int -> unit

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
