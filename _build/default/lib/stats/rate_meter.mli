(** Sliding-window rate measurement.

    Tracks bytes (or any additive quantity) over a moving time window and
    reports the average rate — how the victim experiences the "effective
    bandwidth" of a flow. Also accumulates the all-time total, from which
    whole-run averages (the r factor of Section IV-A.1) are computed. *)

type t

val create : window:float -> t
(** [window] in seconds, positive. *)

val add : t -> now:float -> float -> unit
(** Record an amount at time [now]. Times must be non-decreasing. *)

val rate : t -> now:float -> float
(** Windowed average: amount per second over the trailing window. *)

val total : t -> float
(** All-time accumulated amount. *)

val mean_rate : t -> now:float -> float
(** Whole-run average: total / now (0 before time advances). *)
