type t = {
  window : float;
  samples : (float * float) Queue.t;  (* (time, amount) *)
  mutable in_window : float;
  mutable total : float;
}

let create ~window =
  if window <= 0. then invalid_arg "Rate_meter.create: window must be positive";
  { window; samples = Queue.create (); in_window = 0.; total = 0. }

let expire t ~now =
  let cutoff = now -. t.window in
  let rec go () =
    match Queue.peek_opt t.samples with
    | Some (time, amount) when time <= cutoff ->
      ignore (Queue.pop t.samples);
      t.in_window <- t.in_window -. amount;
      go ()
    | _ -> ()
  in
  go ()

let add t ~now amount =
  expire t ~now;
  Queue.add (now, amount) t.samples;
  t.in_window <- t.in_window +. amount;
  t.total <- t.total +. amount

let rate t ~now =
  expire t ~now;
  t.in_window /. t.window

let total t = t.total

let mean_rate t ~now = if now <= 0. then 0. else t.total /. now
