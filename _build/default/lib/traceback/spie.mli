(** SPIE: hash-based IP traceback ([SPS+01]).

    Every participating border router keeps bloom digests of the packets it
    forwarded, organised as a small ring of time windows so queries can ask
    "did you see this packet recently?". Path reconstruction starts at the
    querying gateway and walks upstream, hop by hop, towards whichever
    digest-positive neighbor continues the trail.

    The reconstruction also reports a latency estimate — the query round
    trips the real system would pay — which AITF must budget inside Ttmp. *)

open Aitf_net

type store
(** One router's digest history. *)

type t
(** A deployment: the stores of all participating routers. *)

val deploy :
  ?bits:int ->
  ?hashes:int ->
  ?window:float ->
  ?windows:int ->
  Network.t ->
  t
(** Install digest recording (a forwarding hook) on every border router of
    the network. Defaults: 2^17 bits, 4 hashes, 1 s windows, 8 windows
    (≈ 8 s of memory). Must be called before traffic starts. *)

val digest : Packet.t -> string
(** The digest key: the invariant header fields (id, true header source,
    destination, protocol, size) — excludes mutable fields like TTL, the
    route record and marks, as SPIE digests must. *)

val store_of : t -> Node.t -> store option
val record : t -> Node.t -> Packet.t -> unit
(** Manually record (the deployed hook does this automatically). *)

val seen : store -> now:float -> Packet.t -> bool
(** Did this router digest the packet within its remembered windows? *)

val reconstruct : t -> from:Node.t -> Packet.t -> Addr.t list * float
(** [reconstruct t ~from pkt] walks upstream from [from] and returns the
    attack path in attacker-first order (the same convention as
    {!Route_record.path}), excluding [from] itself, together with the
    estimated query latency in seconds (one round trip per traversed link).
    An empty list means no upstream router remembers the packet. *)

val queries : t -> int
(** Total membership queries issued by reconstructions (accuracy/cost
    reporting). *)
