lib/traceback/spie.mli: Addr Aitf_net Network Node Packet
