lib/traceback/ppm.mli: Addr Aitf_engine Aitf_net Node Packet
