lib/traceback/ppm.ml: Addr Aitf_engine Aitf_net Hashtbl Node Option Packet
