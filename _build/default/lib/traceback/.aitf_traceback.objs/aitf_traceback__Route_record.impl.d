lib/traceback/route_record.ml: Aitf_net List Node Packet
