lib/traceback/bloom.ml: Bytes Char Hashtbl
