lib/traceback/route_record.mli: Addr Aitf_net Node Packet
