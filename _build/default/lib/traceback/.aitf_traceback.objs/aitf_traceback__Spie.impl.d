lib/traceback/spie.ml: Aitf_engine Aitf_net Array Bloom Hashtbl Link List Network Node Packet Printf
