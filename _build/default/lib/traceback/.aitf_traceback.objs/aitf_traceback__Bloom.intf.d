lib/traceback/bloom.mli:
