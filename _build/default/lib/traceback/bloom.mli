(** Bloom filters — the digest structure behind SPIE ([SPS+01]).

    A fixed-size bit array with [k] independent seeded hash functions.
    Supports the two properties SPIE relies on: no false negatives, and a
    false-positive rate controlled by the bits-per-element budget. *)

type t

val create : bits:int -> hashes:int -> t
(** [bits] and [hashes] must be positive; [bits] is rounded up to a multiple
    of 8. *)

val add : t -> string -> unit
val mem : t -> string -> bool
val clear : t -> unit

val bits : t -> int
val hashes : t -> int
val inserted : t -> int
(** Number of {!add} calls since the last {!clear}. *)

val fill_ratio : t -> float
(** Fraction of bits set — a cheap saturation indicator. *)

val theoretical_fp_rate : t -> float
(** (1 - e^{-kn/m})^k for the current load. *)
