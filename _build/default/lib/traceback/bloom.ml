type t = {
  bytes : Bytes.t;
  nbits : int;
  hashes : int;
  mutable inserted : int;
  mutable set_bits : int;
}

let create ~bits ~hashes =
  if bits <= 0 || hashes <= 0 then
    invalid_arg "Bloom.create: bits and hashes must be positive";
  let nbytes = (bits + 7) / 8 in
  {
    bytes = Bytes.make nbytes '\000';
    nbits = nbytes * 8;
    hashes;
    inserted = 0;
    set_bits = 0;
  }

let bit_index t seed key = Hashtbl.seeded_hash seed key mod t.nbits

let set_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  let v = Char.code (Bytes.get t.bytes byte) in
  let mask = 1 lsl bit in
  if v land mask = 0 then begin
    Bytes.set t.bytes byte (Char.chr (v lor mask));
    t.set_bits <- t.set_bits + 1
  end

let get_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get t.bytes byte) land (1 lsl bit) <> 0

let add t key =
  for seed = 0 to t.hashes - 1 do
    set_bit t (bit_index t seed key)
  done;
  t.inserted <- t.inserted + 1

let mem t key =
  let rec go seed =
    seed >= t.hashes || (get_bit t (bit_index t seed key) && go (seed + 1))
  in
  go 0

let clear t =
  Bytes.fill t.bytes 0 (Bytes.length t.bytes) '\000';
  t.inserted <- 0;
  t.set_bits <- 0

let bits t = t.nbits
let hashes t = t.hashes
let inserted t = t.inserted
let fill_ratio t = float_of_int t.set_bits /. float_of_int t.nbits

let theoretical_fp_rate t =
  let k = float_of_int t.hashes in
  let n = float_of_int t.inserted in
  let m = float_of_int t.nbits in
  (1.0 -. exp (-.k *. n /. m)) ** k
