open Aitf_net

let hook (node : Node.t) (pkt : Packet.t) =
  Packet.record_route pkt node.Node.addr;
  Node.Continue

let install node = Node.add_hook node hook

let path (pkt : Packet.t) = pkt.route_record

let gateway_for_round path ~round = List.nth_opt path round
