(** In-packet route record (TRIAD-style traceback, [CG00]).

    Each AITF border router stamps its address into packets it forwards, so
    the receiver reads the attack path straight out of the packet and
    "traceback time is 0". The stamp order is traversal order, which means
    the head of the list is the AITF node closest to the attacker — exactly
    the order escalation consumes it in. *)

open Aitf_net

val hook : Node.t -> Packet.t -> Node.hook_verdict
(** Forwarding hook for border routers: stamp and continue. *)

val install : Node.t -> unit
(** Attach {!hook} to the node. *)

val path : Packet.t -> Addr.t list
(** The recorded path, attacker-side first. *)

val gateway_for_round : Addr.t list -> round:int -> Addr.t option
(** [gateway_for_round path ~round] is the AITF node the mechanism contacts
    in escalation round [round] (0-based): the (round+1)-th closest to the
    attacker. *)
