module Sim = Aitf_engine.Sim
open Aitf_net

type store = {
  window : float;
  mutable blooms : (int * Bloom.t) array;  (* (window index, digest) ring *)
  bits : int;
  hashes : int;
}

type t = {
  net : Network.t;
  stores : (int, store) Hashtbl.t;  (* node id -> store *)
  mutable queries : int;
}

let digest (pkt : Packet.t) =
  Printf.sprintf "%d|%ld|%ld|%d|%d" pkt.id pkt.src pkt.dst pkt.proto pkt.size

let window_index store now = int_of_float (now /. store.window)

(* The ring slot for a window index; recycled blooms are cleared lazily when
   a new window claims the slot. *)
let bloom_for store idx =
  let slot = idx mod Array.length store.blooms in
  let current_idx, bloom = store.blooms.(slot) in
  if current_idx = idx then bloom
  else begin
    Bloom.clear bloom;
    store.blooms.(slot) <- (idx, bloom);
    bloom
  end

let make_store ~bits ~hashes ~window ~windows =
  {
    window;
    blooms = Array.init windows (fun _ -> (-1, Bloom.create ~bits ~hashes));
    bits;
    hashes;
  }

let record_in store ~now pkt =
  let idx = window_index store now in
  Bloom.add (bloom_for store idx) (digest pkt)

let seen store ~now pkt =
  let key = digest pkt in
  let now_idx = window_index store now in
  let windows = Array.length store.blooms in
  let hit = ref false in
  Array.iter
    (fun (idx, bloom) ->
      if idx >= 0 && now_idx - idx < windows && Bloom.mem bloom key then
        hit := true)
    store.blooms;
  !hit

let deploy ?(bits = 1 lsl 17) ?(hashes = 4) ?(window = 1.0) ?(windows = 8) net =
  let t = { net; stores = Hashtbl.create 32; queries = 0 } in
  let sim = Network.sim net in
  let attach (node : Node.t) =
    if Node.is_border node then begin
      let store = make_store ~bits ~hashes ~window ~windows in
      Hashtbl.replace t.stores node.Node.id store;
      Node.add_hook node (fun _ pkt ->
          record_in store ~now:(Sim.now sim) pkt;
          Node.Continue)
    end
  in
  List.iter attach (Network.nodes net);
  t

let store_of t (node : Node.t) = Hashtbl.find_opt t.stores node.Node.id

let record t (node : Node.t) pkt =
  match store_of t node with
  | None -> ()
  | Some store -> record_in store ~now:(Sim.now (Network.sim t.net)) pkt

let reconstruct t ~from pkt =
  let sim = Network.sim t.net in
  let now = Sim.now sim in
  let visited = Hashtbl.create 16 in
  (* Walk upstream: from the current router, find a not-yet-visited border
     neighbor whose digests contain the packet; each probe costs one query
     round trip over the connecting link. *)
  let rec walk (node : Node.t) acc latency =
    Hashtbl.replace visited node.Node.id ();
    let try_port (found, latency) (port : Node.port) =
      match found with
      | Some _ -> (found, latency)
      | None -> (
        let peer = Network.node t.net port.Node.peer_id in
        if Hashtbl.mem visited peer.Node.id then (None, latency)
        else
          match Hashtbl.find_opt t.stores peer.Node.id with
          | None -> (None, latency)
          | Some store ->
            t.queries <- t.queries + 1;
            let latency = latency +. (2.0 *. Link.delay port.Node.link) in
            if seen store ~now pkt then (Some peer, latency)
            else (None, latency))
    in
    match List.fold_left try_port (None, latency) node.Node.ports with
    | Some next, latency -> walk next (next.Node.addr :: acc) latency
    | None, latency -> (acc, latency)
  in
  walk from [] 0.

let queries t = t.queries
