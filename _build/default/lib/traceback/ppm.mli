(** Probabilistic packet marking ([SWKA00], edge sampling).

    Each router, with probability [p], starts a fresh edge mark in the
    packet; otherwise it completes a just-started edge and increments the
    edge's distance. A victim collecting enough marked packets recovers the
    path one edge per distance value. Unlike the route record, this costs
    the victim convergence time — the trade AITF's Ttmp analysis cares
    about. *)

open Aitf_net

val hook : p:float -> rng:Aitf_engine.Rng.t -> Node.t -> Packet.t -> Node.hook_verdict
(** Marking hook with marking probability [p]. *)

val install : p:float -> rng:Aitf_engine.Rng.t -> Node.t -> unit
(** Attach a marking hook to a border router. *)

module Collector : sig
  (** Victim-side mark collection and path reconstruction. *)

  type t

  val create : unit -> t

  val observe : t -> Packet.t -> unit
  (** Feed every received packet of the suspect flow. *)

  val samples : t -> int
  (** Marked packets seen so far. *)

  val reconstruct : t -> Addr.t list option
  (** The path in attacker-first order (matching {!Route_record.path}), or
      [None] until the edges collected so far chain contiguously from
      distance 0 upward. For each distance the most frequently seen edge is
      trusted, making the reconstruction robust to occasional mark
      spoofing. *)

  val expected_samples : p:float -> hops:int -> float
  (** Classic bound on the expected number of marked packets needed:
      ln(hops) / (p (1-p)^{hops-1}). *)
end
