(** DPF: route-based distributed packet filtering ([PL01]).

    Park & Lee's proactive spoofing defense, which the paper positions as
    complementary to AITF ("DPF is proactive, whereas AITF is reactive").
    A DPF router checks every transit packet against routing feasibility:
    traffic claiming source S must arrive on the interface this router
    would itself use towards S (with symmetric shortest-path routing, the
    reverse-path-forwarding check). Spoofed packets whose claimed source
    lives elsewhere in the topology fail the check and die before reaching
    the victim.

    Two modes:
    - {e strict}: drop unless the arrival interface matches the reverse
      route exactly — maximal filtering, safe on tree-like or
      shortest-path-symmetric topologies;
    - {e loose}: drop only when the claimed source has no route at all
      (bogon filtering). *)

open Aitf_net

type mode = Strict | Loose

type t

val install : ?mode:mode -> Network.t -> Node.t -> t
(** Attach the feasibility check (default {!Strict}) to a router. Drops are
    accounted on the node under ["dpf-spoof"]. Must be installed after
    {!Network.compute_routes}. *)

val deploy : ?mode:mode -> Network.t -> Node.t list -> t list
(** Install on many routers at once. *)

val checked : t -> int
(** Packets inspected. *)

val dropped : t -> int
(** Packets rejected as infeasible. *)
