lib/dpf/dpf.mli: Aitf_net Network Node
