lib/dpf/dpf.ml: Aitf_net List Lpm Network Node Packet
