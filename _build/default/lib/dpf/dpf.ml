open Aitf_net

type mode = Strict | Loose

type t = {
  net : Network.t;
  node : Node.t;
  mode : mode;
  mutable checked : int;
  mutable dropped : int;
}

(* The reverse-path check: would this router route towards [pkt.src] out of
   the interface the packet arrived on? Locally-delivered-from-direct-hosts
   traffic (last hop is the FIB's next hop to the source) passes. *)
let feasible t (pkt : Packet.t) =
  match Lpm.lookup t.node.Node.fib pkt.src with
  | None -> false (* no route back to the claimed source: bogon *)
  | Some port -> (
    match t.mode with
    | Loose -> true
    | Strict -> (
      match pkt.last_hop with
      | None -> true (* originated here *)
      | Some hop -> (
        match Network.node_by_addr t.net hop with
        | None -> false
        | Some prev -> prev.Node.id = port.Node.peer_id)))

let hook t (_node : Node.t) (pkt : Packet.t) =
  t.checked <- t.checked + 1;
  if feasible t pkt then Node.Continue
  else begin
    t.dropped <- t.dropped + 1;
    Node.Drop "dpf-spoof"
  end

let install ?(mode = Strict) net node =
  let t = { net; node; mode; checked = 0; dropped = 0 } in
  Node.add_hook node (hook t);
  t

let deploy ?mode net nodes = List.map (fun n -> install ?mode net n) nodes

let checked t = t.checked
let dropped t = t.dropped
