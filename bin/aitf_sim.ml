(* aitf_sim — command-line front end to the AITF simulator.

   Subcommands:
     run       simulate a single-attacker Figure-1 scenario, every protocol
               knob exposed as a flag; optionally dump the victim-rate
               series as CSV
     flood     a zombie army vs a server in a provider hierarchy
     swarm     a spoofed-source swarm over fluid aggregates (hybrid engine)
     internet  a generated AS-level Internet under DDoS, with a pluggable
               filter-placement policy (docs/TOPOLOGY.md, docs/PLACEMENT.md)
     matrix    the golden-trace differential matrix: every topology x
               engine x fault x adversary x placement cell byte-compared
               against checked-in goldens (docs/GOLDENS.md)
     replay    drive a trace-driven attack (synthesized or from a file)
               through either engine (docs/GOLDENS.md)
     formulas  evaluate the paper's Section IV formulas for given
               parameters

   Numeric flags are validated up front: a malformed value (nan, an
   out-of-range probability, a zero count) is rejected with the flag
   named and the CLI-error exit code, never absorbed by a default.

   Examples:
     aitf_sim run --duration 60 --t-filter 6 --non-coop 1 --strategy onoff
     aitf_sim run --trace --duration 10
     aitf_sim run --spans spans.json --flight-recorder 4096 --profile
     aitf_sim swarm --sources 100000 --pools 8 --spans spans.json
     aitf_sim internet --sources 1000000 --placement optimal
     aitf_sim matrix --smoke --bench-json BENCH_E19.json
     aitf_sim replay --shape carpet --seed 7 --emit-trace
     aitf_sim formulas --r1 100 --r2 1 --t-filter 60 --ttmp 0.6
*)

module Sim = Aitf_engine.Sim
module Trace = Aitf_engine.Trace
module Series = Aitf_stats.Series
module Table = Aitf_stats.Table
open Aitf_core
module Scenarios = Aitf_workload.Scenarios
module Formulas = Aitf_model.Formulas
open Cmdliner

(* --- run ------------------------------------------------------------------ *)

(* Strict numeric flag values. [Arg.float] happily accepts "nan", "inf"
   and out-of-range numbers, which then propagate silently into the
   scenario (a nan duration runs forever, a loss of 1.5 is a certainty).
   Every numeric flag goes through one of these validated converters, so
   a malformed value names the offending flag and exits non-zero. *)
let finite what s =
  match float_of_string_opt s with
  | None ->
    Error (`Msg (Printf.sprintf "%s: expected a number, got %S" what s))
  | Some v when not (Float.is_finite v) ->
    Error (`Msg (Printf.sprintf "%s: must be finite, got %S" what s))
  | Some v -> Ok v

let float_print fmt v = Format.fprintf fmt "%g" v

let float_conv what ~check ~expect =
  let parse s =
    Result.bind (finite what s) (fun v ->
        if check v then Ok v
        else
          Error (`Msg (Printf.sprintf "%s: must be %s, got %g" what expect v)))
  in
  Arg.conv (parse, float_print)

let pos_float what = float_conv what ~check:(fun v -> v > 0.) ~expect:"> 0"

let nonneg_float what =
  float_conv what ~check:(fun v -> v >= 0.) ~expect:">= 0"

let prob_float what =
  float_conv what
    ~check:(fun v -> v >= 0. && v <= 1.)
    ~expect:"a probability in [0, 1]"

let min_int what lo =
  let parse s =
    match int_of_string_opt s with
    | None ->
      Error (`Msg (Printf.sprintf "%s: expected an integer, got %S" what s))
    | Some v when v < lo ->
      Error (`Msg (Printf.sprintf "%s: must be >= %d, got %d" what lo v))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_int)

(* "A:B" float pairs, for --burst-loss and --flap; both components are
   validated by [check]/[expect] like the scalar converters. *)
let pair_conv ~what ?(check = Float.is_finite) ?(expect = "finite") () =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some a, Some b ->
        if check a && check b then Ok (a, b)
        else
          Error
            (`Msg
               (Printf.sprintf "%s: both components must be %s" what expect))
      | _ -> Error (`Msg (Printf.sprintf "%s expects FLOAT:FLOAT" what)))
    | _ -> Error (`Msg (Printf.sprintf "%s expects FLOAT:FLOAT" what))
  in
  let print fmt (a, b) = Format.fprintf fmt "%g:%g" a b in
  Arg.conv (parse, print)

let adversary_conv =
  let module Adversary = Aitf_adversary.Adversary in
  let parse s =
    match Adversary.playbook_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p = Format.pp_print_string fmt (Adversary.playbook_to_string p) in
  Arg.conv (parse, print)

let strategy_conv =
  let parse = function
    | "complies" -> Ok Policy.Complies
    | "ignores" -> Ok Policy.Ignores
    | s when String.length s > 6 && String.sub s 0 6 = "onoff:" -> (
      match float_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some off_time -> Ok (Policy.On_off { off_time })
      | None -> Error (`Msg "onoff:<seconds> expected"))
    | "onoff" -> Ok (Policy.On_off { off_time = 1.0 })
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt s = Policy.pp_attacker fmt s in
  Arg.conv (parse, print)

(* --- causal tracing / flight recorder / profiler -------------------------
   One flag block shared by run, flood and swarm (docs/OBSERVABILITY.md,
   "Causal tracing"). Everything is off by default and attached
   process-globally before the scenario builds its topology, so the
   gateways see the collectors at construction time. *)

type obs_opts = {
  spans_file : string option;
  flight_capacity : int;
  flight_dump : bool;
  flight_dump_file : string option;
  profile : bool;
  slo : float option;
}

type obs_state = {
  collector : Aitf_obs.Span.t option;
  recorder : Aitf_obs.Flight.t option;
  profiler : Aitf_obs.Profile.t option;
}

let obs_term =
  let spans =
    Arg.(value & opt (some string) None & info [ "spans" ] ~docv:"FILE"
           ~doc:"Attach the causal span collector and write the span forest \
                 as Chrome trace-event JSON (loadable in Perfetto); also \
                 prints the per-stage critical-path summary. See \
                 docs/OBSERVABILITY.md, section Causal tracing.")
  in
  let flight =
    Arg.(value & opt (min_int "--flight-recorder" 0) 0 & info [ "flight-recorder" ] ~docv:"N"
           ~doc:"Arm the packet flight recorder: a ring buffer of the last \
                 N per-hop link records (enqueue/dequeue/drop with queue \
                 depth). 0 disables. Dumped automatically on an --slo \
                 breach, or at the end of the run with --flight-dump.")
  in
  let flight_dump =
    Arg.(value & flag & info [ "flight-dump" ]
           ~doc:"Dump the retained flight-recorder records to stderr after \
                 the run (on-demand counterpart to the --slo auto-dump).")
  in
  let flight_dump_file =
    Arg.(value & opt (some string) None & info [ "flight-dump-file" ]
           ~docv:"FILE"
           ~doc:"Write --slo auto-dumps to FILE instead of stderr. In \
                 sharded runs each shard's ring dumps to FILE.shard<i> \
                 (records sorted by time, shard, sequence), so concurrent \
                 breaches never interleave.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Profile the engine: wall-clock seconds per event category \
                 plus the peak event-queue depth, printed after the run and \
                 folded into the metrics report when --metrics is given. \
                 Wall-clock figures are nondeterministic; the simulated \
                 event sequence is unchanged.")
  in
  let slo =
    Arg.(value & opt (some (pos_float "--slo")) None & info [ "slo" ] ~docv:"SECONDS"
           ~doc:"Latency objective for one filtering request (root opened \
                 at the victim until the long filter lands). A request \
                 completing later than this dumps the flight recorder. \
                 Implies span collection even without --spans.")
  in
  Term.(
    const (fun spans_file flight_capacity flight_dump flight_dump_file
               profile slo ->
        { spans_file; flight_capacity; flight_dump; flight_dump_file;
          profile; slo })
    $ spans $ flight $ flight_dump $ flight_dump_file $ profile $ slo)

let obs_attach (o : obs_opts) =
  let collector =
    if o.spans_file <> None || o.slo <> None then begin
      let t = Aitf_obs.Span.create () in
      Aitf_obs.Span.attach t;
      Some t
    end
    else None
  in
  let recorder =
    if o.flight_capacity > 0 then begin
      let f = Aitf_obs.Flight.create ~capacity:o.flight_capacity in
      Aitf_obs.Flight.set_dump_path f o.flight_dump_file;
      Aitf_obs.Flight.attach f;
      Some f
    end
    else None
  in
  (match (collector, o.slo) with
  | Some t, Some seconds ->
    Aitf_obs.Span.set_slo t ~seconds (fun root ->
        Format.eprintf "-- SLO breach: corr=%d flow=%s took %.3fs (> %gs) --@."
          root.Aitf_obs.Span.corr root.Aitf_obs.Span.flow
          (match root.Aitf_obs.Span.completed_at with
          | Some c -> c -. root.Aitf_obs.Span.opened_at
          | None -> nan)
          seconds;
        match recorder with
        | Some f -> Aitf_obs.Flight.auto_dump f
        | None -> ())
  | _ -> ());
  let profiler =
    if o.profile then begin
      let p = Aitf_obs.Profile.create () in
      Aitf_obs.Profile.attach p;
      Some p
    end
    else None
  in
  { collector; recorder; profiler }

(* Detach everything (reverse order), export the span forest, and surface
   the profiler through the registry so the JSON run report written later
   carries the hot-path buckets. *)
let obs_finish (o : obs_opts) (st : obs_state) ~registry ~now =
  (match st.profiler with
  | None -> ()
  | Some p ->
    Aitf_obs.Profile.detach ();
    (match registry with
    | Some reg ->
      Aitf_obs.Profile.register_metrics p reg ~prefix:"engine.profile"
    | None -> ());
    print_string (Aitf_obs.Profile.report p));
  (match st.recorder with
  | None -> ()
  | Some f ->
    Aitf_obs.Flight.detach ();
    Printf.printf "flight recorder: %d record(s) seen, last %d retained\n"
      (Aitf_obs.Flight.recorded f)
      (List.length (Aitf_obs.Flight.records f));
    if o.flight_dump then Aitf_obs.Flight.dump f);
  match st.collector with
  | None -> ()
  | Some t ->
    Aitf_obs.Span.detach ();
    (match o.spans_file with
    | None -> ()
    | Some file ->
      Aitf_obs.Report.write_json file (Aitf_obs.Span.to_chrome_trace ~now t);
      Printf.printf "wrote %s (%d request(s) traced)\n" file
        (List.length (Aitf_obs.Span.roots t)));
    print_string (Aitf_obs.Span.summary t)

let run_cmd =
  let duration =
    Arg.(value & opt (pos_float "--duration") 60. & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated duration.")
  in
  let t_filter =
    Arg.(value & opt (pos_float "--t-filter") 6. & info [ "t-filter"; "T" ] ~docv:"SECONDS"
           ~doc:"The blocking interval T every request asks for.")
  in
  let t_tmp =
    Arg.(value & opt (pos_float "--ttmp") 0.5 & info [ "ttmp" ] ~docv:"SECONDS"
           ~doc:"Ttmp, the victim gateway's temporary-filter horizon.")
  in
  let attack_rate =
    Arg.(value & opt (nonneg_float "--attack-rate") 1e6 & info [ "attack-rate" ] ~docv:"BITS/S"
           ~doc:"Undesired flow rate.")
  in
  let legit_rate =
    Arg.(value & opt (nonneg_float "--legit-rate") 0. & info [ "legit-rate" ] ~docv:"BITS/S"
           ~doc:"Bystander flow rate sharing the victim tail (0 = none).")
  in
  let non_coop =
    Arg.(value & opt (min_int "--non-coop" 0) 0 & info [ "non-coop" ] ~docv:"K"
           ~doc:"Number of unresponsive attacker-side gateways.")
  in
  let strategy =
    Arg.(value & opt strategy_conv Policy.Ignores & info [ "strategy" ]
           ~docv:"complies|ignores|onoff[:T]"
           ~doc:"Attacker host behaviour on a filtering request.")
  in
  let td =
    Arg.(value & opt (nonneg_float "--td") 0.1 & info [ "td" ] ~docv:"SECONDS"
           ~doc:"Victim detection delay Td for a new flow.")
  in
  let depth =
    Arg.(value & opt (min_int "--depth" 1) 3 & info [ "depth" ] ~docv:"N"
           ~doc:"Gateways per side of the chain.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let no_handshake =
    Arg.(value & flag & info [ "no-handshake" ]
           ~doc:"Disable the 3-way verification handshake.")
  in
  let disconnect =
    Arg.(value & flag & info [ "disconnect" ]
           ~doc:"Enforce disconnection of non-compliant parties.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the protocol event timeline while running.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the victim-observed attack-rate series as CSV.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print per-gateway and per-link statistics after the run.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Attach a metrics registry and write a JSON run report \
                 (schema aitf.run-report/1, see docs/OBSERVABILITY.md).")
  in
  let metrics_csv =
    Arg.(value & opt (some string) None & info [ "metrics-csv" ] ~docv:"FILE"
           ~doc:"Write the sampled metric time series as long-format CSV \
                 (metric,time,value).")
  in
  let metrics_interval =
    Arg.(value & opt (nonneg_float "--metrics-interval") 0. & info [ "metrics-interval" ] ~docv:"SECONDS"
           ~doc:"Metric sampling period (0 = the scenario default).")
  in
  let traceback =
    Arg.(value & opt (enum [ ("rr", `Rr); ("spie", `Spie); ("ppm", `Ppm) ]) `Rr
         & info [ "traceback" ] ~docv:"rr|spie|ppm"
             ~doc:"Traceback mechanism: in-packet route record, SPIE digest \
                   queries at the gateway, or probabilistic packet marking.")
  in
  let loss =
    Arg.(value & opt (prob_float "--loss") 0. & info [ "loss" ] ~docv:"P"
           ~doc:"I.i.d. loss probability for control packets crossing the \
                 victim's tail circuit (both directions).")
  in
  let burst_loss =
    Arg.(value & opt (some (pair_conv ~what:"--burst-loss"
                 ~check:(fun v -> v >= 0. && v <= 1.)
                 ~expect:"a probability in [0, 1]" ())) None
         & info [ "burst-loss" ] ~docv:"P_ENTER:P_EXIT"
             ~doc:"Gilbert-Elliott burst loss on the victim-tail control \
                   channel: per-packet probability of entering / leaving \
                   the all-loss bad state.")
  in
  let dup =
    Arg.(value & opt (prob_float "--dup") 0. & info [ "dup" ] ~docv:"P"
           ~doc:"Probability of duplicating a control packet on the \
                 victim's tail circuit.")
  in
  let flap =
    Arg.(value & opt (some (pair_conv ~what:"--flap" ~check:(fun v -> v > 0.) ~expect:"> 0" ())) None
         & info [ "flap" ] ~docv:"PERIOD:DOWN"
             ~doc:"Flap the victim's tail circuit: every PERIOD seconds, \
                   take it down (both directions) for DOWN seconds.")
  in
  let ctrl_retries =
    Arg.(value & opt (min_int "--ctrl-retries" 0) 0 & info [ "ctrl-retries" ] ~docv:"N"
           ~doc:"Control-plane retransmissions per message beyond the \
                 first transmission (0 = single-shot, the classic \
                 protocol).")
  in
  let ctrl_rto =
    Arg.(value & opt (pos_float "--ctrl-rto") 0.5 & info [ "ctrl-rto" ] ~docv:"SECONDS"
           ~doc:"Initial control-plane retransmission timeout; doubles on \
                 every retry.")
  in
  let adversary =
    Arg.(value & opt_all adversary_conv [] & info [ "adversary" ]
           ~docv:"PLAYBOOK[:k=v,...]"
           ~doc:"Launch an adversary playbook against the protocol itself \
                 (repeatable): slot-exhaustion, shadow-exhaustion, \
                 request-flood, reply-replay or route-forgery. See \
                 docs/ADVERSARY.md for the knobs of each.")
  in
  let overload =
    Arg.(value & flag & info [ "overload" ]
           ~doc:"Enable the filter-table overload manager (watermark-driven \
                 aggregation and priority eviction under slot pressure).")
  in
  let filter_capacity =
    Arg.(value & opt (min_int "--filter-capacity" 1) Config.default.Config.filter_capacity
         & info [ "filter-capacity" ] ~docv:"SLOTS"
             ~doc:"Wire-speed filter-table slots per gateway.")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("packet", Config.Packet); ("hybrid", Config.Hybrid) ])
             Config.Packet
         & info [ "engine" ] ~docv:"packet|hybrid"
             ~doc:"Data-plane substrate: discrete packets end to end, or \
                   the fluid rate-domain plane bridged to the packet-level \
                   control plane by sampled probes (see docs/SIMULATOR.md).")
  in
  let hybrid_epoch =
    Arg.(value & opt (pos_float "--hybrid-epoch") Config.default.Config.hybrid_epoch
         & info [ "hybrid-epoch" ] ~docv:"SECONDS"
             ~doc:"Fluid-share recompute period under --engine hybrid.")
  in
  let probe_rate =
    Arg.(value & opt float Config.default.Config.hybrid_probe_rate
         & info [ "probe-rate" ] ~docv:"PKTS/S"
             ~doc:"Probe packets materialised per aggregate under --engine \
                   hybrid (0 = derive from the aggregate's own rate).")
  in
  let run duration t_filter t_tmp attack_rate legit_rate non_coop strategy td
      depth seed no_handshake disconnect trace csv stats metrics metrics_csv
      metrics_interval traceback loss burst_loss dup flap ctrl_retries
      ctrl_rto adversary overload filter_capacity engine hybrid_epoch
      probe_rate obs =
    if trace then Trace.add_sink (Trace.printing_sink ());
    let registry =
      if metrics <> None || metrics_csv <> None then begin
        let reg = Aitf_obs.Metrics.create () in
        Aitf_obs.Metrics.attach reg;
        Some reg
      end
      else None
    in
    let obs_state = obs_attach obs in
    let config =
      {
        Config.default with
        Config.t_filter;
        t_tmp;
        grace = 0.3;
        min_report_gap = Float.max 0.2 (t_filter /. 30.);
        handshake = not no_handshake;
        disconnect;
        ctrl_retries;
        ctrl_rto;
        filter_capacity;
        overload_manager = overload;
        engine;
        hybrid_epoch;
        hybrid_probe_rate = probe_rate;
      }
    in
    let ctrl_faults =
      let module F = Aitf_fault.Fault in
      (if loss > 0. then [ F.Loss loss ] else [])
      @ (match burst_loss with
        | Some (p_enter, p_exit) -> [ F.burst ~p_enter ~p_exit () ]
        | None -> [])
      @ if dup > 0. then [ F.Duplicate dup ] else []
    in
    let params =
      {
        Scenarios.default_chain with
        Scenarios.spec = { Aitf_topo.Chain.default_spec with depth };
        config;
        seed;
        duration;
        attack_rate;
        legit_rate;
        n_non_coop_gws = non_coop;
        attacker_strategy = strategy;
        td;
        traceback =
          (match traceback with
          | `Rr -> `Path_in_request
          | `Spie -> `Spie
          | `Ppm -> `Ppm);
        sample_period =
          (if metrics_interval > 0. then metrics_interval
           else Scenarios.default_chain.Scenarios.sample_period);
        ctrl_faults;
        tail_flap = flap;
        adversaries = adversary;
        in_pool_legit_rate = (if adversary <> [] then legit_rate /. 10. else 0.);
      }
    in
    let r = Scenarios.run_chain params in
    Aitf_obs.Metrics.detach ();
    obs_finish obs obs_state ~registry ~now:duration;
    if trace then Trace.clear_sinks ();
    let table =
      Table.create ~title:"scenario result" ~columns:[ "metric"; "value" ]
    in
    let add k v = Table.add_row table [ k; v ] in
    add "attack offered (bytes)" (Printf.sprintf "%.0f" r.Scenarios.attack_offered_bytes);
    add "attack received (bytes)" (Printf.sprintf "%.0f" r.Scenarios.attack_received_bytes);
    add "effective bandwidth ratio r" (Printf.sprintf "%.5f" r.Scenarios.r_measured);
    add "paper bound n(Td+Tr)/T"
      (Printf.sprintf "%.5f"
         (Formulas.effective_bandwidth_ratio ~n:(non_coop + 1) ~td
            ~tr:Aitf_topo.Chain.default_spec.Aitf_topo.Chain.access_delay
            ~t_filter));
    (if legit_rate > 0. then
       add "legit received / offered"
         (Printf.sprintf "%.0f / %.0f" r.Scenarios.good_received_bytes
            r.Scenarios.good_offered_bytes));
    add "filtering requests sent" (string_of_int r.Scenarios.requests_sent);
    add "escalations" (string_of_int r.Scenarios.escalations);
    if ctrl_faults <> [] || flap <> None || ctrl_retries > 0 then begin
      add "control packets dropped by faults"
        (string_of_int r.Scenarios.faults_injected);
      add "victim request retransmissions"
        (string_of_int r.Scenarios.requests_retransmitted);
      add "gateway ctrl retransmissions"
        (string_of_int r.Scenarios.ctrl_retransmits);
      add "gateway retry budgets exhausted"
        (string_of_int r.Scenarios.ctrl_gave_up)
    end;
    (match Scenarios.time_to_suppress r ~threshold:0.05 with
    | Some t -> add "time to suppression (s)" (Printf.sprintf "%.2f" t)
    | None -> add "time to suppression (s)" "never");
    add "events processed" (string_of_int r.Scenarios.events_processed);
    (match r.Scenarios.fluid with
    | Some eng ->
      add "fluid aggregates / sources"
        (Printf.sprintf "%d / %d"
           (Scenarios.Fluid.aggregates eng)
           (Scenarios.Fluid.total_sources eng));
      add "fluid share recomputes" (string_of_int (Scenarios.Fluid.recomputes eng))
    | None -> ());
    List.iter
      (fun h ->
        let module A = Aitf_adversary.Adversary in
        add
          (Printf.sprintf "adversary %s" (A.kind (A.playbook h)))
          (Printf.sprintf "pkts=%d reqs=%d replays=%d guesses=%d forged=%d"
             (A.packets_sent h) (A.requests_sent h) (A.replays_sent h)
             (A.guesses_sent h) (A.stamps_forged h)))
      r.Scenarios.adversary_handles;
    if overload then begin
      add "overload aggregations" (string_of_int r.Scenarios.overload_aggregations);
      add "overload evictions" (string_of_int r.Scenarios.overload_evictions);
      add "collateral (pkts / bytes)"
        (Printf.sprintf "%d / %d" r.Scenarios.collateral_packets
           r.Scenarios.collateral_bytes)
    end;
    Table.print table;
    if stats then begin
      Table.print
        (Aitf_workload.Report.gateway_table
           (r.Scenarios.deployed.Aitf_topo.Chain.victim_gateways
           @ r.Scenarios.deployed.Aitf_topo.Chain.attacker_gateways));
      Table.print
        (Aitf_workload.Report.link_table
           r.Scenarios.deployed.Aitf_topo.Chain.topo.Aitf_topo.Chain.net);
      match registry with
      | Some reg -> Table.print (Aitf_workload.Report.metrics_table reg)
      | None -> ()
    end;
    (match registry with
    | None -> ()
    | Some reg ->
      let module Json = Aitf_obs.Json in
      let series =
        match r.Scenarios.sampler with
        | Some s -> Aitf_obs.Sampler.series s
        | None -> []
      in
      let meta =
        [
          ("scenario", Json.String "chain");
          ("seed", Json.Int seed);
          ("duration", Json.Float duration);
          ("attack_rate", Json.Float attack_rate);
          ("t_filter", Json.Float t_filter);
          ("t_tmp", Json.Float t_tmp);
          ("non_coop", Json.Int non_coop);
        ]
      in
      (match metrics with
      | Some file ->
        Aitf_obs.Report.write_json file
          (Aitf_obs.Report.make ~meta ~series ~now:duration reg);
        Printf.printf "wrote %s (%d metrics, %d series)\n" file
          (Aitf_obs.Metrics.size reg) (List.length series)
      | None -> ());
      match metrics_csv with
      | Some file ->
        Aitf_obs.Report.write_file file (Aitf_obs.Report.series_csv series);
        Printf.printf "wrote %s\n" file
      | None -> ());
    (match csv with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc "time,attack_bps\n";
      List.iter
        (fun (t, v) -> Printf.fprintf oc "%.3f,%.1f\n" t v)
        (Series.points r.Scenarios.victim_rate);
      close_out oc;
      Printf.printf "wrote %s (%d samples)\n" file
        (Series.length r.Scenarios.victim_rate))
  in
  let term =
    Term.(
      const run $ duration $ t_filter $ t_tmp $ attack_rate $ legit_rate
      $ non_coop $ strategy $ td $ depth $ seed $ no_handshake $ disconnect
      $ trace $ csv $ stats $ metrics $ metrics_csv $ metrics_interval
      $ traceback $ loss $ burst_loss $ dup $ flap $ ctrl_retries
      $ ctrl_rto $ adversary $ overload $ filter_capacity $ engine
      $ hybrid_epoch $ probe_rate $ obs_term)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a single-attacker Figure-1 scenario.")
    term

(* --- flood ------------------------------------------------------------------ *)

let flood_cmd =
  let isps = Arg.(value & opt (min_int "--isps" 1) 3 & info [ "isps" ] ~doc:"Number of ISPs.") in
  let nets =
    Arg.(value & opt (min_int "--nets" 1) 3 & info [ "nets" ] ~doc:"Enterprise networks per ISP.")
  in
  let hosts =
    Arg.(value & opt (min_int "--hosts" 1) 3 & info [ "hosts" ] ~doc:"Hosts per enterprise.")
  in
  let zombies =
    Arg.(value & opt (min_int "--zombies" 0) 12 & info [ "zombies" ] ~doc:"Size of the zombie army.")
  in
  let rate =
    Arg.(value & opt (nonneg_float "--zombie-rate") 1e6 & info [ "zombie-rate" ] ~docv:"BITS/S"
           ~doc:"Per-zombie attack rate.")
  in
  let duration =
    Arg.(value & opt (pos_float "--duration") 20. & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated duration.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let no_aitf =
    Arg.(value & flag & info [ "no-aitf" ] ~doc:"Run without any defense.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Attach a metrics registry and write a JSON run report \
                 (schema aitf.run-report/1).")
  in
  let metrics_interval =
    Arg.(value & opt (nonneg_float "--metrics-interval") 0. & info [ "metrics-interval" ] ~docv:"SECONDS"
           ~doc:"Metric sampling period (0 = the scenario default).")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("packet", Config.Packet); ("hybrid", Config.Hybrid) ])
             Config.Packet
         & info [ "engine" ] ~docv:"packet|hybrid"
             ~doc:"Data-plane substrate (see docs/SIMULATOR.md).")
  in
  let run isps nets hosts zombies rate duration seed no_aitf metrics
      metrics_interval engine obs =
    let registry =
      if metrics <> None then begin
        let reg = Aitf_obs.Metrics.create () in
        Aitf_obs.Metrics.attach reg;
        Some reg
      end
      else None
    in
    let obs_state = obs_attach obs in
    let r =
      Scenarios.run_flood
        {
          Scenarios.default_flood with
          Scenarios.hierarchy =
            {
              Aitf_topo.Hierarchy.default_spec with
              Aitf_topo.Hierarchy.isps;
              nets_per_isp = nets;
              hosts_per_net = hosts;
            };
          flood_config =
            {
              Scenarios.default_flood.Scenarios.flood_config with
              Config.engine;
            };
          zombies;
          zombie_rate = rate;
          flood_duration = duration;
          flood_seed = seed;
          with_aitf = not no_aitf;
          flood_sample_period =
            (if metrics_interval > 0. then metrics_interval
             else Scenarios.default_flood.Scenarios.flood_sample_period);
        }
    in
    Aitf_obs.Metrics.detach ();
    obs_finish obs obs_state ~registry ~now:duration;
    let table =
      Table.create ~title:"flood result" ~columns:[ "metric"; "value" ]
    in
    let add k v = Table.add_row table [ k; v ] in
    add "zombies placed" (string_of_int r.Scenarios.zombies_placed);
    add "legit received / offered"
      (Printf.sprintf "%.0f / %.0f (%.0f%%)" r.Scenarios.legit_received_bytes
         r.Scenarios.legit_offered_bytes
         (100. *. r.Scenarios.legit_received_bytes
         /. Float.max 1. r.Scenarios.legit_offered_bytes));
    add "attack bytes reaching victim"
      (Printf.sprintf "%.0f" r.Scenarios.flood_attack_received_bytes);
    (match r.Scenarios.victim with
    | Some v ->
      add "victim requests" (string_of_int (Host_agent.Victim.requests_sent v))
    | None -> ());
    if not no_aitf then begin
      add "filter installs at enterprise gateways"
        (string_of_int r.Scenarios.leaf_filters);
      add "filters at ISP gateways" (string_of_int r.Scenarios.isp_filters)
    end;
    add "events processed" (string_of_int r.Scenarios.flood_events);
    (match r.Scenarios.flood_fluid with
    | Some eng ->
      add "fluid aggregates / sources"
        (Printf.sprintf "%d / %d"
           (Scenarios.Fluid.aggregates eng)
           (Scenarios.Fluid.total_sources eng))
    | None -> ());
    Table.print table;
    match (registry, metrics) with
    | Some reg, Some file ->
      let module Json = Aitf_obs.Json in
      let series =
        match r.Scenarios.flood_sampler with
        | Some s -> Aitf_obs.Sampler.series s
        | None -> []
      in
      let meta =
        [
          ("scenario", Json.String "flood");
          ("seed", Json.Int seed);
          ("duration", Json.Float duration);
          ("zombies", Json.Int zombies);
          ("zombie_rate", Json.Float rate);
          ("with_aitf", Json.Bool (not no_aitf));
        ]
      in
      Aitf_obs.Report.write_json file
        (Aitf_obs.Report.make ~meta ~series ~now:duration reg);
      Printf.printf "wrote %s (%d metrics, %d series)\n" file
        (Aitf_obs.Metrics.size reg) (List.length series)
    | _ -> ()
  in
  let term =
    Term.(
      const run $ isps $ nets $ hosts $ zombies $ rate $ duration $ seed
      $ no_aitf $ metrics $ metrics_interval $ engine $ obs_term)
  in
  Cmd.v
    (Cmd.info "flood"
       ~doc:"Simulate a zombie army flooding a server in a provider hierarchy.")
    term

(* --- swarm ------------------------------------------------------------------ *)

let swarm_cmd =
  let sources =
    Arg.(value & opt (min_int "--sources" 1) 1000 & info [ "sources" ] ~docv:"N"
           ~doc:"Total attacking sources across the spoofed pools.")
  in
  let pools =
    Arg.(value & opt (min_int "--pools" 1) 4 & info [ "pools" ] ~docv:"N"
           ~doc:"Origin pool nodes (1..16), one fluid aggregate each.")
  in
  let attack_rate =
    Arg.(value & opt (nonneg_float "--attack-rate") 20e6 & info [ "attack-rate" ] ~docv:"BITS/S"
           ~doc:"Total attack rate summed over every source.")
  in
  let legit_rate =
    Arg.(value & opt (nonneg_float "--legit-rate") 1e6 & info [ "legit-rate" ] ~docv:"BITS/S"
           ~doc:"Bystander rate sharing the victim tail (0 = none).")
  in
  let duration =
    Arg.(value & opt (pos_float "--duration") 30. & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated duration.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let td =
    Arg.(value & opt (nonneg_float "--td") 0.1 & info [ "td" ] ~docv:"SECONDS"
           ~doc:"Victim detection delay Td for a new flow.")
  in
  let hybrid_epoch =
    Arg.(value & opt (pos_float "--hybrid-epoch") Config.default.Config.hybrid_epoch
         & info [ "hybrid-epoch" ] ~docv:"SECONDS"
             ~doc:"Fluid-share recompute period (the scenario is always \
                   hybrid).")
  in
  let probe_rate =
    Arg.(value & opt float Config.default.Config.hybrid_probe_rate
         & info [ "probe-rate" ] ~docv:"PKTS/S"
             ~doc:"Probe packets materialised per aggregate (0 = derive \
                   from the aggregate's own rate).")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Attach a metrics registry and write a JSON run report \
                 (schema aitf.run-report/1).")
  in
  let metrics_interval =
    Arg.(value & opt (nonneg_float "--metrics-interval") 0. & info [ "metrics-interval" ] ~docv:"SECONDS"
           ~doc:"Metric sampling period (0 = the scenario default).")
  in
  let run sources pools attack_rate legit_rate duration seed td hybrid_epoch
      probe_rate metrics metrics_interval obs =
    let registry =
      if metrics <> None then begin
        let reg = Aitf_obs.Metrics.create () in
        Aitf_obs.Metrics.attach reg;
        Some reg
      end
      else None
    in
    let obs_state = obs_attach obs in
    let r =
      Scenarios.run_swarm
        {
          Scenarios.default_swarm with
          Scenarios.swarm_config =
            {
              Scenarios.default_swarm.Scenarios.swarm_config with
              Config.hybrid_epoch;
              hybrid_probe_rate = probe_rate;
            };
          swarm_seed = seed;
          swarm_duration = duration;
          swarm_sources = sources;
          swarm_pools = pools;
          swarm_attack_rate = attack_rate;
          swarm_legit_rate = legit_rate;
          swarm_td = td;
          swarm_sample_period =
            (if metrics_interval > 0. then metrics_interval
             else Scenarios.default_swarm.Scenarios.swarm_sample_period);
        }
    in
    Aitf_obs.Metrics.detach ();
    obs_finish obs obs_state ~registry ~now:duration;
    let table =
      Table.create ~title:"swarm result" ~columns:[ "metric"; "value" ]
    in
    let add k v = Table.add_row table [ k; v ] in
    add "sources / pools" (Printf.sprintf "%d / %d" sources pools);
    add "legit received / offered"
      (Printf.sprintf "%.0f / %.0f" r.Scenarios.swarm_good_received_bytes
         r.Scenarios.swarm_good_offered_bytes);
    add "attack bytes reaching victim"
      (Printf.sprintf "%.0f" r.Scenarios.swarm_attack_received_bytes);
    add "filtering requests sent" (string_of_int r.Scenarios.swarm_requests_sent);
    add "filter installs (all gateways)" (string_of_int r.Scenarios.swarm_filters);
    add "requests absorbed at pools" (string_of_int r.Scenarios.swarm_absorbed);
    add "fluid aggregates / sources"
      (Printf.sprintf "%d / %d"
         (Scenarios.Fluid.aggregates r.Scenarios.swarm_fluid)
         (Scenarios.Fluid.total_sources r.Scenarios.swarm_fluid));
    add "events processed" (string_of_int r.Scenarios.swarm_events);
    Table.print table;
    match (registry, metrics) with
    | Some reg, Some file ->
      let module Json = Aitf_obs.Json in
      let series =
        match r.Scenarios.swarm_sampler with
        | Some s -> Aitf_obs.Sampler.series s
        | None -> []
      in
      let meta =
        [
          ("scenario", Json.String "swarm");
          ("seed", Json.Int seed);
          ("duration", Json.Float duration);
          ("sources", Json.Int sources);
          ("pools", Json.Int pools);
          ("attack_rate", Json.Float attack_rate);
        ]
      in
      Aitf_obs.Report.write_json file
        (Aitf_obs.Report.make ~meta ~series ~now:duration reg);
      Printf.printf "wrote %s (%d metrics, %d series)\n" file
        (Aitf_obs.Metrics.size reg) (List.length series)
    | _ -> ()
  in
  let term =
    Term.(
      const run $ sources $ pools $ attack_rate $ legit_rate $ duration
      $ seed $ td $ hybrid_epoch $ probe_rate $ metrics $ metrics_interval
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "swarm"
       ~doc:"Scale a spoofed-source swarm over fluid aggregates against the \
             Figure-1 chain (hybrid engine).")
    term

(* --- internet --------------------------------------------------------------- *)

let placement_conv =
  let parse s =
    match Placement.policy_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p = Format.pp_print_string fmt (Placement.policy_to_string p) in
  Arg.conv (parse, print)

let internet_cmd =
  let module As_graph = Aitf_topo.As_graph in
  let module As_scenario = Aitf_workload.As_scenario in
  let module Placement_ctl = Aitf_workload.Placement_ctl in
  let domains =
    Arg.(value & opt (min_int "--domains" 3) 1000 & info [ "domains" ] ~docv:"N"
           ~doc:"Gateway domains in the generated AS graph (<= 16384).")
  in
  let tier1 =
    Arg.(value & opt (min_int "--tier1" 2) As_graph.default_spec.As_graph.tier1
         & info [ "tier1" ] ~docv:"N"
             ~doc:"Fully-meshed tier-1 providers at the top of the graph.")
  in
  let multihome =
    Arg.(value & opt (min_int "--multihome" 1) As_graph.default_spec.As_graph.multihome
         & info [ "multihome" ] ~docv:"N"
             ~doc:"Provider uplinks per non-tier-1 domain.")
  in
  let peer_p =
    Arg.(value & opt (prob_float "--peer-p") As_graph.default_spec.As_graph.peer_p
         & info [ "peer-p" ] ~docv:"P"
             ~doc:"Probability a new domain adds one lateral peer link.")
  in
  let placement =
    Arg.(value & opt placement_conv Placement.Vanilla
         & info [ "placement" ] ~docv:"POLICY"
             ~doc:"Filter-placement policy: $(b,vanilla) (classic AITF \
                   escalate-upstream), $(b,optimal) (per-epoch optimal \
                   filter selection) or $(b,adaptive) (feedback-driven \
                   frontier walking). See docs/PLACEMENT.md.")
  in
  let placement_epoch =
    Arg.(value & opt (pos_float "--placement-epoch") Config.default.Config.placement_epoch
         & info [ "placement-epoch" ] ~docv:"SECONDS"
             ~doc:"Managed-placement controller decision period.")
  in
  let sources =
    Arg.(value & opt (min_int "--sources" 1) 100_000 & info [ "sources" ] ~docv:"N"
           ~doc:"Total attack sources spread over the attack domains.")
  in
  let attack_domains =
    Arg.(value & opt (min_int "--attack-domains" 1) 40 & info [ "attack-domains" ] ~docv:"N"
           ~doc:"Domains hosting an attack source pool.")
  in
  let legit_sources =
    Arg.(value & opt (min_int "--legit-sources" 0) 10_000 & info [ "legit-sources" ] ~docv:"N"
           ~doc:"Total legitimate sources spread over the legit domains.")
  in
  let legit_domains =
    Arg.(value & opt (min_int "--legit-domains" 1) 10 & info [ "legit-domains" ] ~docv:"N"
           ~doc:"Domains hosting a legitimate source pool.")
  in
  let attack_rate =
    Arg.(value & opt (nonneg_float "--attack-rate") 200e6 & info [ "attack-rate" ] ~docv:"BITS/S"
           ~doc:"Total attack rate summed over every source.")
  in
  let legit_rate =
    Arg.(value & opt (nonneg_float "--legit-rate") 5e6 & info [ "legit-rate" ] ~docv:"BITS/S"
           ~doc:"Total legitimate rate towards the victim.")
  in
  let duration =
    Arg.(value & opt (pos_float "--duration") 30. & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated duration.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed (graph, pools and placement).")
  in
  let td =
    Arg.(value & opt (nonneg_float "--td") 0.1 & info [ "td" ] ~docv:"SECONDS"
           ~doc:"Victim detection delay Td for a new flow.")
  in
  let overload =
    Arg.(value & flag & info [ "overload" ]
           ~doc:"Enable the filter-table overload manager (watermarks, \
                 prefix aggregation, priority eviction) on every gateway.")
  in
  let filter_capacity =
    Arg.(value & opt (min_int "--filter-capacity" 1) Config.default.Config.filter_capacity
         & info [ "filter-capacity" ] ~docv:"N"
             ~doc:"Per-gateway filter-table slots.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Attach a metrics registry and write a JSON run report \
                 (schema aitf.run-report/1).")
  in
  let contracts =
    Arg.(value & flag & info [ "contracts" ]
           ~doc:"Enable verifiable filtering contracts: signed requests, \
                 install receipts, a victim-side auditor and \
                 Byzantine-gateway failover (docs/CONTRACTS.md).")
  in
  let byzantine_fraction =
    Arg.(value & opt (prob_float "--byzantine-fraction") 0.
         & info [ "byzantine-fraction" ] ~docv:"P"
             ~doc:"Fraction of on-path gateways corrupted into the lying \
                   mode at setup (needs $(b,--contracts)).")
  in
  let lying_mode =
    let module A = Aitf_adversary.Adversary in
    let parse s =
      match String.split_on_char ':' s with
      | [ "accept-ignore" ] -> Ok A.Accept_ignore
      | [ "forge" ] -> Ok A.Forge
      | [ "replay" ] -> Ok A.Replay
      | [ "partial" ] -> Ok (A.Partial 125_000.)
      | [ "partial"; leak ] -> (
        match float_of_string_opt leak with
        | Some l when l >= 0. -> Ok (A.Partial l)
        | Some _ | None ->
          Error (`Msg (Printf.sprintf "--lying-mode: bad leak %S" leak)))
      | _ ->
        Error
          (`Msg
             "--lying-mode: expected accept-ignore | partial[:BYTES/S] | \
              forge | replay")
    in
    let print fmt m =
      Format.pp_print_string fmt
        (match m with
        | A.Accept_ignore -> "accept-ignore"
        | A.Partial l -> Printf.sprintf "partial:%g" l
        | A.Forge -> "forge"
        | A.Replay -> "replay")
    in
    Arg.(value & opt (conv (parse, print)) A.Accept_ignore
         & info [ "lying-mode" ] ~docv:"MODE"
             ~doc:"How corrupted gateways cheat: $(b,accept-ignore), \
                   $(b,partial)[:leak bytes/s], $(b,forge) or $(b,replay).")
  in
  let contract_r1 =
    Arg.(value & opt (some (pos_float "--contract-r1")) None
         & info [ "contract-r1" ] ~docv:"REQ/S"
             ~doc:"Provider-side contract: admit client filtering requests \
                   at R1 per second (default: the paper's 100/s when only \
                   $(b,--contract-r2) is given).")
  in
  let contract_r2 =
    Arg.(value & opt (some (pos_float "--contract-r2")) None
         & info [ "contract-r2" ] ~docv:"REQ/S"
             ~doc:"Provider-side contract: cap counter-requests towards \
                   the client at R2 per second (default: the paper's 1/s \
                   when only $(b,--contract-r1) is given).")
  in
  let audit_deadline =
    Arg.(value & opt (pos_float "--audit-deadline")
           Aitf_contract.Auditor.default_config.Aitf_contract.Auditor.deadline
         & info [ "audit-deadline" ] ~docv:"SECONDS"
             ~doc:"Auditor: how long a gateway has to produce its first \
                   receipt. Set below the temp-filter lifetime to catch \
                   accept-then-ignore liars that blind escalation would \
                   paper over.")
  in
  let audit_grace =
    Arg.(value & opt (pos_float "--audit-grace")
           Aitf_contract.Auditor.default_config.Aitf_contract.Auditor.grace
         & info [ "audit-grace" ] ~docv:"SECONDS"
             ~doc:"Auditor: arrivals within this window of a valid receipt \
                   (or of the audit tick) still count as in-flight, not as \
                   evidence. Must stay below the deadline.")
  in
  let shards =
    Arg.(value & opt (min_int "--shards" 1) 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Simulation shards for the parallel engine \
                 (docs/PARALLEL.md). 1 (the default) is the sequential \
                 engine, bit-identical to earlier releases; N > 1 \
                 partitions the domains over N event-queue shards \
                 synchronized by conservative lookahead windows — \
                 deterministic for a fixed (seed, N), with outcome \
                 scalars that vary slightly across shard counts. \
                 Observability composes: --spans, --flight-recorder, \
                 --metrics and --contracts all work at any N (per-shard \
                 collectors merged deterministically after the run; see \
                 docs/OBSERVABILITY.md).")
  in
  let run domains tier1 multihome peer_p placement placement_epoch sources
      attack_domains legit_sources legit_domains attack_rate legit_rate
      duration seed td overload filter_capacity metrics contracts
      byzantine_fraction lying_mode contract_r1 contract_r2 audit_deadline
      audit_grace shards obs =
    let registry =
      if metrics <> None then begin
        let reg = Aitf_obs.Metrics.create () in
        Aitf_obs.Metrics.attach reg;
        Some reg
      end
      else None
    in
    let obs_state = obs_attach obs in
    let r =
      As_scenario.run
        {
          As_scenario.default with
          As_scenario.as_spec =
            {
              As_graph.default_spec with
              As_graph.domains;
              tier1;
              multihome;
              peer_p;
            };
          as_config =
            {
              Config.default with
              Config.engine = Config.Hybrid;
              placement;
              placement_epoch;
              overload_manager = overload;
              aggregate_on_pressure = overload;
              filter_capacity;
            };
          as_seed = seed;
          as_duration = duration;
          as_sources = sources;
          as_attack_domains = attack_domains;
          as_legit_domains = legit_domains;
          as_legit_sources = legit_sources;
          as_attack_rate = attack_rate;
          as_legit_rate = legit_rate;
          as_td = td;
          as_contracts = contracts;
          as_byzantine_fraction = byzantine_fraction;
          as_lying_mode = lying_mode;
          as_contract =
            (match (contract_r1, contract_r2) with
            | None, None -> None
            | r1, r2 ->
              let d = Contract.paper_default in
              Some
                (Contract.v
                   ~r1:(Option.value r1 ~default:d.Contract.r1)
                   ~r2:(Option.value r2 ~default:d.Contract.r2)
                   ()));
          as_audit =
            {
              Aitf_contract.Auditor.default_config with
              Aitf_contract.Auditor.deadline = audit_deadline;
              grace = audit_grace;
            };
          as_shards = shards;
        }
    in
    Aitf_obs.Metrics.detach ();
    obs_finish obs obs_state ~registry ~now:duration;
    (* Shard profilers are per-instance (obs_finish only reported the
       default probe, i.e. the coordinator); merge them into one table. *)
    (match r.As_scenario.r_shard_profiles with
    | [] -> ()
    | profs ->
      let merged = Aitf_obs.Profile.merge profs in
      (match registry with
      | Some reg ->
        Aitf_obs.Profile.register_metrics merged reg
          ~prefix:"engine.profile.shards"
      | None -> ());
      print_string "shard sims (merged):\n";
      print_string (Aitf_obs.Profile.report merged));
    let table =
      Table.create
        ~title:
          (Printf.sprintf "internet result (%s placement)"
             (Placement.policy_to_string placement))
        ~columns:[ "metric"; "value" ]
    in
    let add k v = Table.add_row table [ k; v ] in
    add "domains / attack / legit"
      (Printf.sprintf "%d / %d / %d" domains attack_domains legit_domains);
    add "sources (attack / legit)"
      (Printf.sprintf "%d / %d" sources legit_sources);
    add "victim domain" (string_of_int r.As_scenario.r_victim_domain);
    add "time-to-filter (s)"
      (match r.As_scenario.r_time_to_filter with
      | Some t -> Printf.sprintf "%.2f" t
      | None -> "never");
    add "collateral damage"
      (Printf.sprintf "%.1f%%" (100. *. r.As_scenario.r_collateral_fraction));
    add "legit received / offered (MB)"
      (Printf.sprintf "%.2f / %.2f"
         (r.As_scenario.r_good_received_bytes /. 1e6)
         (r.As_scenario.r_good_offered_bytes /. 1e6));
    add "attack bytes reaching victim (MB)"
      (Printf.sprintf "%.2f" (r.As_scenario.r_attack_received_bytes /. 1e6));
    add "filter slots (peak, all gateways)"
      (string_of_int r.As_scenario.r_slots_peak);
    add "filter installs (all gateways)"
      (string_of_int r.As_scenario.r_filters_installed);
    add "filtering requests sent" (string_of_int r.As_scenario.r_requests_sent);
    (match r.As_scenario.r_ctl with
    | Some ctl ->
      add "placement reports" (string_of_int (Placement_ctl.evidence ctl));
      add "placement installs" (string_of_int (Placement_ctl.installs ctl));
      add "placement reclaims" (string_of_int (Placement_ctl.reclaims ctl));
      add "placement frontier pushes" (string_of_int (Placement_ctl.pushes ctl))
    | None -> add "requests absorbed at pools" (string_of_int r.As_scenario.r_absorbed));
    (match r.As_scenario.r_auditor with
    | None -> ()
    | Some a ->
      let module Auditor = Aitf_contract.Auditor in
      let byz = List.map snd r.As_scenario.r_byzantine in
      let flagged = Auditor.flagged a in
      let missed =
        List.filter (fun b -> not (List.mem b flagged)) byz
      in
      let false_pos =
        List.filter (fun g -> not (List.mem g byz)) flagged
      in
      add "byzantine gateways (corrupted)" (string_of_int (List.length byz));
      add "gateways flagged / missed / false-pos"
        (Printf.sprintf "%d / %d / %d" (List.length flagged)
           (List.length missed) (List.length false_pos));
      add "receipts verified / rejected"
        (Printf.sprintf "%d / %d"
           (Auditor.receipts_verified a)
           (Auditor.receipts_rejected a));
      add "contract failovers" (string_of_int r.As_scenario.r_failovers));
    add "events processed" (string_of_int r.As_scenario.r_events);
    (if shards > 1 then begin
       let module Sched = Aitf_parallel.Sched in
       let st = r.As_scenario.r_sched_stats in
       add "shards" (string_of_int shards);
       add "sync windows (shard / global)"
         (Printf.sprintf "%d / %d" st.Sched.windows st.Sched.global_batches);
       add "cross-shard messages" (string_of_int st.Sched.messages);
       add "deferred mutations" (string_of_int st.Sched.deferred);
       add "barrier stall (s)" (Printf.sprintf "%.3f" st.Sched.stall_seconds)
     end);
    Table.print table;
    match (registry, metrics) with
    | Some reg, Some file ->
      let module Json = Aitf_obs.Json in
      let meta =
        [
          ("scenario", Json.String "internet");
          ("placement", Json.String (Placement.policy_to_string placement));
          ("seed", Json.Int seed);
          ("duration", Json.Float duration);
          ("domains", Json.Int domains);
          ("sources", Json.Int sources);
          ("attack_rate", Json.Float attack_rate);
          ("contracts", Json.Bool contracts);
          ("byzantine_fraction", Json.Float byzantine_fraction);
          ("shards", Json.Int shards);
        ]
      in
      (* The sched.* gauges are registered by the scenario itself (live
         reads over the scheduler, including the per-window timeline);
         the run report just adds the structured "parallel" section. *)
      Aitf_obs.Report.write_json file
        (Aitf_obs.Report.make ~meta ?parallel:r.As_scenario.r_parallel
           ~series:[] ~now:duration reg);
      Printf.printf "wrote %s (%d metrics)\n" file (Aitf_obs.Metrics.size reg)
    | _ -> ()
  in
  let term =
    Term.(
      const run $ domains $ tier1 $ multihome $ peer_p $ placement
      $ placement_epoch $ sources $ attack_domains $ legit_sources
      $ legit_domains $ attack_rate $ legit_rate $ duration $ seed $ td
      $ overload $ filter_capacity $ metrics $ contracts
      $ byzantine_fraction $ lying_mode $ contract_r1 $ contract_r2
      $ audit_deadline $ audit_grace $ shards $ obs_term)
  in
  Cmd.v
    (Cmd.info "internet"
       ~doc:"DDoS a victim on a generated AS-level Internet (power-law \
             degree, valley-free routing, fluid source pools) under a \
             pluggable filter-placement policy.")
    term

(* --- formulas --------------------------------------------------------------- *)

let formulas_cmd =
  let r1 = Arg.(value & opt (nonneg_float "--r1") 100. & info [ "r1" ] ~doc:"Client->provider request rate R1 (1/s).") in
  let r2 = Arg.(value & opt (nonneg_float "--r2") 1. & info [ "r2" ] ~doc:"Provider->client request rate R2 (1/s).") in
  let t_filter = Arg.(value & opt (pos_float "--t-filter") 60. & info [ "t-filter"; "T" ] ~doc:"Blocking interval T (s).") in
  let t_tmp = Arg.(value & opt (pos_float "--ttmp") 0.6 & info [ "ttmp" ] ~doc:"Temporary filter horizon Ttmp (s).") in
  let td = Arg.(value & opt (nonneg_float "--td") 0. & info [ "td" ] ~doc:"Detection delay Td (s).") in
  let tr = Arg.(value & opt (nonneg_float "--tr") 0.05 & info [ "tr" ] ~doc:"Victim->gateway one-way delay Tr (s).") in
  let n = Arg.(value & opt (min_int "--n" 0) 1 & info [ "n" ] ~doc:"Non-cooperating AITF nodes on the path.") in
  let show r1 r2 t_filter t_tmp td tr n =
    let table =
      Table.create ~title:"Section IV formulas" ~columns:[ "quantity"; "value" ]
    in
    let add k v = Table.add_row table [ k; v ] in
    add "r = n(Td+Tr)/T"
      (Printf.sprintf "%.6f"
         (Formulas.effective_bandwidth_ratio ~n ~td ~tr ~t_filter));
    add "Nv = R1*T (protected flows)"
      (string_of_int (Formulas.protected_flows ~r1 ~t_filter));
    add "nv = R1*Ttmp (victim-gw filters)"
      (string_of_int (Formulas.victim_gateway_filters ~r1 ~t_tmp));
    add "mv = R1*T (victim-gw shadow)"
      (string_of_int (Formulas.victim_gateway_shadow ~r1 ~t_filter));
    add "na = R2*T (attacker-side filters)"
      (string_of_int (Formulas.attacker_gateway_filters ~r2 ~t_filter));
    add "min Ttmp (traceback + handshake)"
      (Printf.sprintf "%.3f" (Formulas.min_t_tmp ~traceback_time:0. ~handshake_time:0.6));
    Table.print table
  in
  let term = Term.(const show $ r1 $ r2 $ t_filter $ t_tmp $ td $ tr $ n) in
  Cmd.v (Cmd.info "formulas" ~doc:"Evaluate the paper's closed-form model.") term

(* --- matrix ----------------------------------------------------------------- *)

let matrix_cmd =
  let module Matrix = Aitf_workload.Matrix in
  let goldens =
    Arg.(value & opt string "test/goldens" & info [ "goldens" ] ~docv:"DIR"
           ~doc:"Directory holding the checked-in golden documents.")
  in
  let bless =
    Arg.(value & flag & info [ "bless" ]
           ~doc:"Regenerate the goldens from this run instead of comparing \
                 (the intentional-change path; see docs/GOLDENS.md).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Run only the reduced CI cell set.")
  in
  let only =
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"CELL"
           ~doc:"Run only the named cell (repeatable).")
  in
  let bench_json =
    Arg.(value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE"
           ~doc:"Write the per-cell perf trajectory (wall-clock, allocated \
                 bytes, peak queue depth, engine events; schema \
                 aitf.matrix-bench/1) — what CI uploads as BENCH_E19.json.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List the cell ids and exit.")
  in
  let shards =
    Arg.(value & opt (min_int "--shards" 1) 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Run the unpinned internet cells (contract cells included) \
                 on the parallel engine with N shards; -shard<K> cells \
                 keep their pinned count. Span tracing stays on — the \
                 per-cell span_digest in --bench-json is shard-invariant. \
                 Sharded documents still differ from the 1-shard goldens \
                 in outcome scalars, so pair with --bless into a scratch \
                 --goldens directory — the determinism-stress regime CI \
                 uses. See docs/PARALLEL.md.")
  in
  let run goldens bless smoke only bench_json list shards =
    if list then
      List.iter
        (fun c ->
          Printf.printf "%s%s\n" c.Matrix.id
            (if c.Matrix.smoke then "  [smoke]" else ""))
        Matrix.cells
    else begin
      let s =
        Matrix.run ~clock:Unix.gettimeofday ~only ~smoke ~bless ~shards
          ~goldens_dir:goldens ()
      in
      Matrix.print_summary s;
      Option.iter
        (fun file ->
          Aitf_obs.Report.write_json file (Matrix.bench_json s);
          Printf.printf "wrote %s\n" file)
        bench_json;
      if s.Matrix.s_drifted > 0 || s.Matrix.s_disagreements > 0 then exit 1
    end
  in
  let term =
    Term.(
      const run $ goldens $ bless $ smoke $ only $ bench_json $ list $ shards)
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Run the golden-trace differential matrix: every topology x \
             engine x fault x adversary x placement cell, byte-compared \
             against checked-in goldens, with the packet-vs-hybrid \
             agreement gate. Exits non-zero on golden drift or a gated \
             disagreement.")
    term

(* --- replay ------------------------------------------------------------------ *)

let replay_cmd =
  let module Replay = Aitf_workload.Replay in
  let shape =
    Arg.(value
         & opt (enum [ ("pulse", `Pulse); ("churn", `Churn);
                       ("booter", `Booter); ("carpet", `Carpet) ]) `Pulse
         & info [ "shape" ] ~docv:"pulse|churn|booter|carpet"
             ~doc:"Attack shape the trace synthesizer generates (ignored \
                   with --trace-in).")
  in
  let trace_in =
    Arg.(value & opt (some string) None & info [ "trace-in" ] ~docv:"FILE"
           ~doc:"Replay this trace file instead of synthesizing one.")
  in
  let emit =
    Arg.(value & flag & info [ "emit-trace" ]
           ~doc:"Print the canonical trace to stdout and exit without \
                 running it.")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("packet", `Packet); ("hybrid", `Hybrid) ]) `Packet
         & info [ "engine" ] ~docv:"packet|hybrid"
             ~doc:"Engine the trace is driven through.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Synthesizer seed.")
  in
  let duration =
    Arg.(value & opt (pos_float "--duration") 30. & info [ "duration" ]
           ~docv:"SECONDS" ~doc:"Synthesized trace horizon.")
  in
  let rate =
    Arg.(value & opt (nonneg_float "--rate") 20e6 & info [ "rate" ]
           ~docv:"BITS/S" ~doc:"Total attack rate per pool.")
  in
  let n =
    Arg.(value & opt (min_int "--sources" 1) 64 & info [ "n"; "sources" ]
           ~docv:"K" ~doc:"Sources per pool.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the victim-observed attack-rate series as CSV.")
  in
  let run shape trace_in emit engine seed duration rate n csv =
    let trace =
      match trace_in with
      | Some file ->
        let ic = open_in_bin file in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (match Replay.parse text with
        | Ok t -> t
        | Error e ->
          Printf.eprintf "aitf_sim replay: %s: %s\n" file e;
          exit 1)
      | None -> (
        match shape with
        | `Pulse -> Replay.synth_pulse ~seed ~duration ~rate ~n ()
        | `Churn -> Replay.synth_churn ~seed ~duration ~rate ~n ()
        | `Booter -> Replay.synth_booter ~seed ~duration ~rate ~n ()
        | `Carpet -> Replay.synth_carpet ~seed ~duration ~rate ~n ())
    in
    if emit then print_string (Replay.to_string trace)
    else begin
      let r = Replay.run ~engine trace in
      let table =
        Table.create ~title:"replay result" ~columns:[ "quantity"; "value" ]
      in
      let add k v = Table.add_row table [ k; v ] in
      let engine_name =
        match engine with `Packet -> "packet" | `Hybrid -> "hybrid"
      in
      add "engine" engine_name;
      add "pools" (string_of_int (List.length trace.Replay.tr_pools));
      add "events" (string_of_int (List.length trace.Replay.tr_events));
      add "attack offered (MB)"
        (Printf.sprintf "%.2f" (r.Replay.rr_attack_offered_bytes /. 1e6));
      add "attack received (MB)"
        (Printf.sprintf "%.2f" (r.Replay.rr_attack_received_bytes /. 1e6));
      add "good offered (MB)"
        (Printf.sprintf "%.2f" (r.Replay.rr_good_offered_bytes /. 1e6));
      add "good received (MB)"
        (Printf.sprintf "%.2f" (r.Replay.rr_good_received_bytes /. 1e6));
      add "requests sent" (string_of_int r.Replay.rr_requests_sent);
      add "filters installed" (string_of_int r.Replay.rr_filters);
      add "requests absorbed" (string_of_int r.Replay.rr_absorbed);
      add "engine events" (string_of_int r.Replay.rr_events);
      Table.print table;
      Option.iter
        (fun file ->
          let oc = open_out file in
          output_string oc "time,attack_bits_per_s\n";
          List.iter
            (fun (t, v) -> Printf.fprintf oc "%g,%g\n" t v)
            (Series.points r.Replay.rr_victim_rate);
          close_out oc;
          Printf.printf "wrote %s\n" file)
        csv
    end
  in
  let term =
    Term.(
      const run $ shape $ trace_in $ emit $ engine $ seed $ duration $ rate
      $ n $ csv)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Drive a trace-driven attack (pulsing, churn, booter bursts, \
             carpet bombing — synthesized or from a file) through either \
             engine.")
    term

let () =
  (* Parallel-engine barrier stalls are measured on the real clock for
     every command (the library default is a zero clock so pure-library
     users stay deterministic). *)
  Aitf_parallel.Sched.set_default_clock Unix.gettimeofday;
  let info =
    Cmd.info "aitf_sim" ~version:"1.0.0"
      ~doc:"Active Internet Traffic Filtering simulator (Argyraki & Cheriton)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; flood_cmd; swarm_cmd; internet_cmd; matrix_cmd;
            replay_cmd; formulas_cmd;
          ]))
